package runtime

import (
	"testing"

	"naiad/internal/batchbuf"
	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/progress"
	ts "naiad/internal/timestamp"
)

// FuzzDecodeProgress corrupts progress frames: the decoder must reject
// them by panicking (the transport dispatcher recovers and aborts the
// computation) and must never turn a corrupt count into a huge allocation.
func FuzzDecodeProgress(f *testing.F) {
	valid := encodeProgress(progBroadcast, []update{
		{P: progress.Pointstamp{Time: ts.Root(3), Loc: graph.StageLoc(1)}, D: 1},
		{P: progress.Pointstamp{Time: ts.Root(2).PushLoop().Tick(), Loc: graph.ConnLoc(0)}, D: -1},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{0, 255, 255, 255, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var us []update
		err := codec.Catch(func() { _, us = decodeProgress(data) })
		if err != nil {
			return
		}
		// Accepted frames must have had every update actually present.
		if len(us) > len(data)/21+1 {
			t.Fatalf("decoded %d updates from %d bytes", len(us), len(data))
		}
	})
}

// FuzzUnmarshalSnapshot corrupts serialized snapshots: the decoder must
// reject damage with an error (never panic — these bytes come off disk),
// and anything it accepts must be internally consistent with its length.
func FuzzUnmarshalSnapshot(f *testing.F) {
	valid := EncodeSnapshot(&Snapshot{
		Vertices:    map[StageID]map[int][]byte{1: {0: []byte("counter-state")}, 2: {0: nil, 1: []byte{7}}},
		InputEpochs: map[StageID]int64{0: 5},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:snapshotHeaderSize])
	f.Add([]byte{0x50, 0x4e, 0x53, 0x4e, 1, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSnapshot(data)
		if err != nil {
			return
		}
		// The checksum makes blind corruption passing vanishingly unlikely,
		// but the fuzzer can re-frame arbitrary bodies; accepted snapshots
		// must not have over-allocated from count fields.
		total := 0
		for _, m := range s.Vertices {
			for _, b := range m {
				total += len(b)
			}
		}
		if total > len(data) {
			t.Fatalf("snapshot claims %d state bytes from %d input bytes", total, len(data))
		}
	})
}

// FuzzDecodeData corrupts data-frame envelopes against a small real
// dataflow: decode must error (panic recovered by the worker loop in
// production, by Catch here), never over-allocate from the count field.
func FuzzDecodeData(f *testing.F) {
	c, err := NewComputation(DefaultConfig(1))
	if err != nil {
		f.Fatal(err)
	}
	src := c.AddStage("src", graph.RoleInput, 0, nil)
	dst := c.AddStage("dst", graph.RoleNormal, 0,
		func(ctx *Context) Vertex { return &forwardVertex{ctx: ctx} })
	c.Connect(src, 0, dst, nil, codec.Int64())
	ci := c.conns[0]

	valid := encodeData(ci, 0, 0, ts.Root(1), []Message{int64(10), int64(20)})
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var records []Message
		err := codec.Catch(func() { _, _, _, _, records = decodeData(c, data) })
		if err != nil {
			return
		}
		if len(records) > len(data) {
			t.Fatalf("decoded %d records from %d bytes", len(records), len(data))
		}
	})
}

// FuzzBatchDecode corrupts data-frame envelopes against the typed batch
// decode path: decodeDataBatch must error through Catch on damage, never
// over-allocate from the count field, and anything it accepts must agree
// record-for-record with the boxed decoder — the two paths are one wire
// format and may never diverge on the same bytes.
func FuzzBatchDecode(f *testing.F) {
	c, err := NewComputation(DefaultConfig(1))
	if err != nil {
		f.Fatal(err)
	}
	src := c.AddStage("src", graph.RoleInput, 0, nil)
	dst := c.AddStage("dst", graph.RoleNormal, 0,
		func(ctx *Context) Vertex { return &forwardVertex{ctx: ctx} })
	c.Connect(src, 0, dst, nil, codec.Int64())
	ci := c.conns[0]

	valid := encodeData(ci, 0, 0, ts.Root(1).PushLoop().Tick(), []Message{int64(10), int64(-20), int64(1 << 40)})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var b *batchbuf.Batch
		err := codec.Catch(func() { _, _, _, _, b = decodeDataBatch(c, data) })
		if err != nil {
			return
		}
		defer b.Release()
		if b.Len() > len(data) {
			t.Fatalf("decoded %d records from %d bytes", b.Len(), len(data))
		}
		var records []Message
		if err := codec.Catch(func() { _, _, _, _, records = decodeData(c, data) }); err != nil {
			t.Fatalf("batch path accepted a frame the boxed path rejects: %v", err)
		}
		if len(records) != b.Len() {
			t.Fatalf("batch path decoded %d records, boxed path %d", b.Len(), len(records))
		}
		for i := range records {
			if records[i] != b.Record(i) {
				t.Fatalf("record %d: batch %v != boxed %v", i, b.Record(i), records[i])
			}
		}
	})
}

// FuzzBarrierDecode corrupts barrier-marker frames: markers cross process
// boundaries as KindControl frames, so hostile bytes must come back as an
// error — never a panic, never a bogus marker that could tear a cut. A
// frame that decodes must survive a re-encode round trip unchanged.
func FuzzBarrierDecode(f *testing.F) {
	valid := EncodeBarrierMarker(BarrierMarker{
		Cut: 7, Epoch: 3, Conn: 2, Src: 1, Dst: 0, Count: 42,
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:markerHeaderSize])
	f.Add(append([]byte(nil), append(valid, 0)...))
	f.Add([]byte{0x4b, 0x52, 0x42, 0x4e, 2, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m BarrierMarker
		var derr error
		if err := codec.Catch(func() { m, derr = DecodeBarrierMarker(data) }); err != nil {
			t.Fatalf("DecodeBarrierMarker panicked: %v", err)
		}
		if derr != nil {
			return
		}
		// Anything accepted must round-trip exactly: the barrier protocol's
		// torn-cut detection rides on these fields.
		if got, err := DecodeBarrierMarker(EncodeBarrierMarker(m)); err != nil || got != m {
			t.Fatalf("marker round trip: %+v -> %+v (%v)", m, got, err)
		}
	})
}

// FuzzUnmarshalCut corrupts serialized cut snapshots (the v2 NSNP format):
// bytes come off disk, so damage must surface as an error, never a panic,
// and accepted cuts must not have over-allocated from count fields.
func FuzzUnmarshalCut(f *testing.F) {
	cut := newCutSnapshot(3, 2)
	cut.Vertices[1] = map[int][]byte{0: []byte("counter-state")}
	cut.InputEpochs[0] = 2
	cut.Pending[1] = map[int][]PendingNotification{0: {
		{Guarantee: ts.Root(2), Capability: ts.Root(2), HasCap: true},
		{Guarantee: ts.Root(3)},
	}}
	cut.Channels = [][]byte{{1, 2, 3, 4}, {5}}
	valid := EncodeCut(cut)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:snapshotHeaderSize])
	f.Add([]byte{0x50, 0x4e, 0x53, 0x4e, 2, 0, 0, 0, 0, 0, 0, 0, 255, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s *CutSnapshot
		var derr error
		if err := codec.Catch(func() { s, derr = UnmarshalCut(data) }); err != nil {
			t.Fatalf("UnmarshalCut panicked: %v", err)
		}
		if derr != nil {
			return
		}
		total := 0
		for _, m := range s.Vertices {
			for _, b := range m {
				total += len(b)
			}
		}
		for _, ch := range s.Channels {
			total += len(ch)
		}
		if total > len(data) {
			t.Fatalf("cut claims %d payload bytes from %d input bytes", total, len(data))
		}
	})
}
