package runtime

import (
	"testing"
)

// BenchmarkPipelineRecords measures end-to-end per-record cost through a
// map→sink pipeline on one worker, including the final drain. This is the
// path the batched occurrence accounting optimizes: each delivered batch
// retires with one -count update, and routing +1s coalesce per adjacent
// run before hitting the progress buffer.
func BenchmarkPipelineRecords(b *testing.B) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in := c.NewInput("in")
	m := mapStage(c, "map", func(v int64) int64 { return v + 1 })
	c.Connect(in.Stage(), 0, m, nil, nil)
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(m, 0, snk, nil, nil)
	if err := c.Start(); err != nil {
		b.Fatal(err)
	}
	const epochSize = 4096
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		n := epochSize
		if b.N-sent < n {
			n = b.N - sent
		}
		recs := make([]Message, n)
		for i := range recs {
			recs[i] = int64(i)
		}
		in.OnNext(recs...)
		sent += n
	}
	in.Close()
	if err := c.Join(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEpochNotifications measures per-epoch cost when every epoch
// carries one record and one completeness notification — the notification
// delivery path the deliverable-candidate queue optimizes (no per-delivery
// rescan of all pending requests).
func BenchmarkEpochNotifications(b *testing.B) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in := c.NewInput("in")
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(in.Stage(), 0, snk, nil, nil)
	if err := c.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.OnNext(int64(i))
	}
	in.Close()
	if err := c.Join(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if len(s.notified) != b.N {
		b.Fatalf("delivered %d notifications, want %d", len(s.notified), b.N)
	}
}
