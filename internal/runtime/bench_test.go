package runtime

import (
	"runtime"
	"testing"

	"naiad/internal/batchbuf"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// batchMapVertex is the typed fast-path map stage: whole []int64 columns in,
// one pooled []int64 column out, no per-record boxing anywhere.
type batchMapVertex struct {
	ctx  *Context
	f    func(int64) int64
	pool *batchbuf.Pool[int64]
}

func (v *batchMapVertex) OnRecv(_ int, msg Message, t ts.Timestamp) {
	v.ctx.SendBy(0, v.f(msg.(int64)), t)
}

func (v *batchMapVertex) OnRecvBatch(_ int, b *Batch, t ts.Timestamp) {
	data, ok := b.Col().Slice().([]int64)
	if !ok {
		for i, n := 0, b.Len(); i < n; i++ {
			v.OnRecv(0, b.Record(i), t)
		}
		return
	}
	out, col := v.pool.Get(len(data))
	for _, rec := range data {
		col.Data = append(col.Data, v.f(rec))
	}
	v.ctx.SendBatchBy(0, out, t)
}

func (v *batchMapVertex) OnNotify(ts.Timestamp) {}

func batchMapStage(c *Computation, name string, f func(int64) int64) StageID {
	return c.AddStage(name, graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &batchMapVertex{ctx: ctx, f: f, pool: batchbuf.PoolFor[int64]()}
	})
}

// batchCountVertex counts records batch-at-a-time.
type batchCountVertex struct {
	count int64
}

func (v *batchCountVertex) OnRecv(_ int, _ Message, _ ts.Timestamp) { v.count++ }

func (v *batchCountVertex) OnRecvBatch(_ int, b *Batch, _ ts.Timestamp) {
	v.count += int64(b.Len())
}

func (v *batchCountVertex) OnNotify(ts.Timestamp) {}

// BenchmarkPipelineRecords measures end-to-end per-record cost through a
// map→sink pipeline on one worker, including the final drain, on the pooled
// typed-batch data plane: records enter as pooled []int64 batches, the map
// stage transforms column-at-a-time into pooled output batches, and the
// sink consumes whole batches. The steady-state record path allocates
// nothing (see TestPipelineSteadyStateAllocs).
func BenchmarkPipelineRecords(b *testing.B) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in := c.NewInput("in")
	m := batchMapStage(c, "map", func(v int64) int64 { return v + 1 })
	c.Connect(in.Stage(), 0, m, nil, nil)
	cv := &batchCountVertex{}
	snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return cv
	}, Pinned(0))
	c.Connect(m, 0, snk, nil, nil)
	if err := c.Start(); err != nil {
		b.Fatal(err)
	}
	pool := batchbuf.PoolFor[int64]()
	const epochSize = 4096
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		n := epochSize
		if b.N-sent < n {
			n = b.N - sent
		}
		bt, col := pool.Get(n)
		for i := 0; i < n; i++ {
			col.Data = append(col.Data, int64(i))
		}
		in.SendBatch(bt)
		in.Advance()
		sent += n
	}
	in.Close()
	if err := c.Join(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if cv.count != int64(b.N) {
		b.Fatalf("sink saw %d records, want %d", cv.count, b.N)
	}
}

// BenchmarkPipelineRecordsBoxed is the same pipeline driven record-at-a-time
// through the boxed compatibility path ([]Message input, per-record OnRecv),
// kept as the reference point the typed plane is measured against.
func BenchmarkPipelineRecordsBoxed(b *testing.B) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in := c.NewInput("in")
	m := mapStage(c, "map", func(v int64) int64 { return v + 1 })
	c.Connect(in.Stage(), 0, m, nil, nil)
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(m, 0, snk, nil, nil)
	if err := c.Start(); err != nil {
		b.Fatal(err)
	}
	const epochSize = 4096
	b.ResetTimer()
	for sent := 0; sent < b.N; {
		n := epochSize
		if b.N-sent < n {
			n = b.N - sent
		}
		recs := make([]Message, n)
		for i := range recs {
			recs[i] = int64(i)
		}
		in.OnNext(recs...)
		sent += n
	}
	in.Close()
	if err := c.Join(); err != nil {
		b.Fatal(err)
	}
}

// TestPipelineSteadyStateAllocs is the zero-alloc gate on the typed batch
// path: after warm-up, pushing many records through the map→sink pipeline
// must allocate (approaching) nothing per record. testing.AllocsPerRun only
// observes the calling goroutine, and the record path runs on a worker
// goroutine — so the gate measures the process-wide Mallocs delta instead
// and bounds it per record. Per-epoch control traffic (mailbox items,
// progress updates) amortizes across the 4096-record epochs.
func TestPipelineSteadyStateAllocs(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	m := batchMapStage(c, "map", func(v int64) int64 { return v + 1 })
	c.Connect(in.Stage(), 0, m, nil, nil)
	cv := &batchCountVertex{}
	snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return cv
	}, Pinned(0))
	c.Connect(m, 0, snk, nil, nil)
	probe := c.NewProbe(snk)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	pool := batchbuf.PoolFor[int64]()
	const epochSize = 4096
	send := func(epochs int) {
		for e := 0; e < epochs; e++ {
			bt, col := pool.Get(epochSize)
			for i := 0; i < epochSize; i++ {
				col.Data = append(col.Data, int64(i))
			}
			in.SendBatch(bt)
			in.Advance()
		}
	}
	send(8) // warm-up: pools fill, scratch buffers grow
	probe.WaitFor(in.Epoch() - 1)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const epochs = 64
	send(epochs)
	probe.WaitFor(in.Epoch() - 1)
	runtime.ReadMemStats(&after)

	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	records := int64(epochs * epochSize)
	perRecord := float64(after.Mallocs-before.Mallocs) / float64(records)
	t.Logf("steady state: %d mallocs over %d records (%.4f/record)",
		after.Mallocs-before.Mallocs, records, perRecord)
	if perRecord > 0.1 {
		t.Fatalf("typed pipeline allocates %.4f objects/record in steady state, want < 0.1", perRecord)
	}
}

// BenchmarkEpochNotifications measures per-epoch cost when every epoch
// carries one record and one completeness notification — the notification
// delivery path the deliverable-candidate queue optimizes (no per-delivery
// rescan of all pending requests).
func BenchmarkEpochNotifications(b *testing.B) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in := c.NewInput("in")
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(in.Stage(), 0, snk, nil, nil)
	if err := c.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.OnNext(int64(i))
	}
	in.Close()
	if err := c.Join(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if len(s.notified) != b.N {
		b.Fatalf("delivered %d notifications, want %d", len(s.notified), b.N)
	}
}
