package runtime

import (
	"fmt"

	"naiad/internal/graph"
	"naiad/internal/progress"
	ts "naiad/internal/timestamp"
)

// Held capabilities: the runtime face of the progress package's timestamp
// tokens. A vertex callback may hold a capability at a time ≥ its callback
// time; the token keeps that pointstamp occupied in every tracker — stalling
// notifications and probes at or after it — until the holder downgrades it
// away or drops it. This is how an operator withholds completion across
// asynchronous work (the exactly-once sink holds one across its commit I/O)
// without keeping a callback on the worker thread.
//
// Identity across crash and replay: each vertex numbers its capabilities
// with a per-vertex sequence counter. Replayed callbacks re-execute in log
// order, so re-held capabilities receive the same sequence numbers the
// pre-crash execution assigned, and capabilities held at a snapshot instant
// are recorded (seq, time) in the cut and re-minted on revival. Asynchronous
// drops therefore address the token by (stage, seq) against the *current*
// vertex incarnation — a drop queued before a crash still retires the
// re-minted token after replay, and a duplicate drop (the pre-crash
// goroutine and its replayed twin both reporting) is a no-op.

// Capability is a held timestamp token bound to one vertex. Time, Downgrade,
// Drop, SendBy, and SendBatchBy must run on the owning worker thread (from a
// vertex callback); DropAsync is safe from any goroutine and is the only
// method an async holder should touch after capturing what it needs.
type Capability struct {
	w     *worker
	stage StageID
	seq   uint64
	pc    *progress.Capability
}

// HoldCapability mints a capability at time t, which must be ≥ the current
// callback time. Only valid inside a sending callback (not a purge
// notification): the capability inherits the callback's right to act at t.
func (c *Context) HoldCapability(t ts.Timestamp) *Capability {
	w, vs := c.w, c.vs
	n := len(vs.timeStack)
	if n == 0 {
		panic(fmt.Sprintf("runtime: %s: HoldCapability outside a callback", vs.si.name))
	}
	top := vs.timeStack[n-1]
	if !top.canSend {
		panic(fmt.Sprintf("runtime: %s: HoldCapability from a purge notification", vs.si.name))
	}
	if !top.t.LessEq(t) {
		panic(fmt.Sprintf("runtime: %s: HoldCapability at %v before callback time %v", vs.si.name, t, top.t))
	}
	seq := vs.nextCapSeq
	vs.nextCapSeq++
	pc := w.caps.Mint(progress.Pointstamp{Time: t, Loc: graph.StageLoc(vs.si.id)})
	pc.SetSeq(seq)
	hc := &Capability{w: w, stage: vs.si.id, seq: seq, pc: pc}
	if vs.heldCaps == nil {
		vs.heldCaps = make(map[uint64]*Capability)
	}
	vs.heldCaps[seq] = hc
	return hc
}

// HeldCap returns the currently held capability with the given sequence
// number, or nil if it has been dropped. A vertex restored from a snapshot
// uses this to reattach to capabilities it recorded by Seq in its state
// (the snapshot re-mints them; the vertex's old pointers died with it).
// Worker-thread only.
func (c *Context) HeldCap(seq uint64) *Capability {
	return c.vs.heldCaps[seq]
}

// Seq returns the capability's per-vertex sequence number — the stable
// identity a vertex checkpoints to find the token again after a restore.
func (hc *Capability) Seq() uint64 { return hc.seq }

// Time returns the capability's current time. Worker-thread only (a
// concurrent Downgrade would race); async holders capture it before leaving
// the callback.
func (hc *Capability) Time() ts.Timestamp { return hc.pc.Time() }

// Dropped reports whether the token has been retired. Worker-thread only.
func (hc *Capability) Dropped() bool { return hc.pc.Dropped() }

// Downgrade moves the capability forward to time t (≥ its current time),
// relinquishing the right to act at earlier times. Worker-thread only.
func (hc *Capability) Downgrade(t ts.Timestamp) {
	cur := hc.current("Downgrade")
	cur.pc.Downgrade(t)
}

// Drop retires the capability synchronously. Worker-thread only; dropping a
// capability twice panics (use DropAsync from racy paths — it is idempotent).
func (hc *Capability) Drop() {
	w := hc.w
	vs := w.vertices[hc.stage]
	cur, ok := vs.heldCaps[hc.seq]
	if !ok {
		panic(fmt.Sprintf("runtime: %s: double drop of capability %d", vs.si.name, hc.seq))
	}
	delete(vs.heldCaps, hc.seq)
	cur.pc.Drop()
}

// DropAsync retires the capability from any goroutine by queueing the drop
// through the worker's mailbox. Idempotent at the protocol level: the drop
// resolves by (stage, seq) against the vertex's current incarnation, so a
// duplicate — or a drop whose token was already retired by a replayed log
// entry — is a no-op. This is the only Capability method an asynchronous
// holder may call.
func (hc *Capability) DropAsync() {
	hc.w.mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{
		op: ctlCapDrop, stage: hc.stage, hseq: hc.seq,
	}})
}

// SendBy emits a message at time t ≥ the capability's time, under the
// capability's authority — usable from callbacks whose own time has passed t
// (including purge notifications). Worker-thread only.
func (hc *Capability) SendBy(output int, msg Message, t ts.Timestamp) {
	cur := hc.current("SendBy")
	w, vs := hc.w, hc.w.vertices[hc.stage]
	vs.timeStack = append(vs.timeStack, timeFrame{t: cur.pc.Time(), canSend: true})
	w.sendBy(vs, output, msg, t)
	vs.timeStack = vs.timeStack[:len(vs.timeStack)-1]
}

// SendBatchBy is SendBy for a whole batch, consuming one reference to b.
func (hc *Capability) SendBatchBy(output int, b *Batch, t ts.Timestamp) {
	cur := hc.current("SendBatchBy")
	w, vs := hc.w, hc.w.vertices[hc.stage]
	vs.timeStack = append(vs.timeStack, timeFrame{t: cur.pc.Time(), canSend: true})
	w.sendBatchBy(vs, output, b, t)
	vs.timeStack = vs.timeStack[:len(vs.timeStack)-1]
}

// current resolves the capability against the vertex's current incarnation,
// panicking if it was dropped.
func (hc *Capability) current(op string) *Capability {
	vs := hc.w.vertices[hc.stage]
	cur, ok := vs.heldCaps[hc.seq]
	if !ok {
		panic(fmt.Sprintf("runtime: %s: %s on dropped capability %d", vs.si.name, op, hc.seq))
	}
	return cur
}

// dropHeldCap handles ctlCapDrop on the worker thread. Missing (stage, seq)
// means the token was already retired — a duplicate async drop, or a drop
// that landed before a crash and was reproduced from the delivery log — and
// is silently ignored; exactly one resolution posts the -1. Live drops are
// logged so a revived worker's replay retires the re-minted token too.
func (w *worker) dropHeldCap(stage StageID, seq uint64) {
	vs := w.vertices[stage]
	if vs == nil {
		return
	}
	cur, ok := vs.heldCaps[seq]
	if !ok {
		return
	}
	if w.dlogs != nil {
		if lg := w.dlogs[stage]; lg != nil {
			lg.add(vlogEntry{kind: vlogCapDrop, seq: seq})
		}
	}
	delete(vs.heldCaps, seq)
	cur.pc.TryDrop()
}
