package runtime

import (
	"strings"
	"testing"

	"naiad/internal/codec"
)

func TestMetricsCountDeliveries(t *testing.T) {
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	dbl := mapStage(c, "double", func(v int64) int64 { return 2 * v })
	c.Connect(in.Stage(), 0, dbl, hashPart, codec.Int64())
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(dbl, 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	if c.Metrics().Stages != nil {
		t.Fatal("pre-start metrics should be empty")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2), int64(3))
	in.OnNext(int64(4))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	byName := map[string]StageMetrics{}
	for _, sm := range m.Stages {
		byName[sm.Name] = sm
	}
	if byName["double"].Records != 4 {
		t.Fatalf("double records = %d", byName["double"].Records)
	}
	if byName["sink"].Records != 4 {
		t.Fatalf("sink records = %d", byName["sink"].Records)
	}
	// The sink requests one notification per non-empty epoch.
	if byName["sink"].Notifications != 2 {
		t.Fatalf("sink notifications = %d", byName["sink"].Notifications)
	}
	if m.ProgressFrames == 0 || m.ProgressBytes == 0 {
		t.Fatal("no progress traffic recorded in a 2-process run")
	}
	if !strings.Contains(m.String(), "double") || !strings.Contains(m.String(), "transport:") {
		t.Fatalf("render:\n%s", m.String())
	}
}
