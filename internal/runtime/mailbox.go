package runtime

import (
	"sync"
	"sync/atomic"

	"naiad/internal/batchbuf"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// mailKind tags mailbox items.
type mailKind uint8

const (
	// mailLocalData is a record batch from a worker in the same process
	// (no serialization; Naiad's shared-memory path).
	mailLocalData mailKind = iota
	// mailRawData is a serialized record batch from another process.
	mailRawData
	// mailProgress is a progress update batch (shared read-only).
	mailProgress
	// mailControl is a runtime control message.
	mailControl
	// mailBarrier is a barrier marker from a worker in the same process:
	// conn and src identify the channel, barrier the cut, count the
	// sender's per-channel batch counter at marker emission, and time
	// carries the cut's epoch boundary (ts.Root(epoch)).
	mailBarrier
)

// mailItem is one unit of work delivered to a worker.
type mailItem struct {
	kind mailKind

	// mailLocalData: the destination vertex is implied — the receiving
	// worker hosts exactly one vertex of the connector's destination stage.
	// src is the sending vertex index (the channel's other endpoint). The
	// push transfers the batch's reference to the receiving worker.
	conn  graph.ConnectorID
	src   int
	time  ts.Timestamp
	batch *batchbuf.Batch

	// mailRawData:
	payload []byte

	// mailProgress:
	updates []update

	// mailBarrier (also uses conn, src):
	barrier int64
	count   int64

	// mailControl:
	ctl *controlMsg
}

// controlOp enumerates control messages.
type controlOp uint8

const (
	ctlInputFeed controlOp = iota
	ctlInputAdvance
	ctlInputClose
	ctlCheckpoint
	ctlRestore
	// ctlBarrier starts an asynchronous snapshot cut at this worker's
	// input-stage vertices (cut carries the cut id, epoch its boundary).
	ctlBarrier
	// ctlBarrierAbort cancels an in-flight cut: vertices discard partial
	// alignment state, deferred records are released, and delivery-log
	// segments merge back (cut identifies it).
	ctlBarrierAbort
	// ctlCutRetire prunes delivery-log segments older than a completed,
	// persisted cut (cut identifies it).
	ctlCutRetire
	// ctlCrash parks the worker at the next quantum boundary, simulating a
	// single-worker failure for selective-rollback tests.
	ctlCrash
	// ctlCapDrop retires a held capability from an asynchronous holder
	// (Capability.DropAsync): stage and hseq identify the token against the
	// vertex's current incarnation, so the drop is idempotent across crash,
	// replay, and duplicate reports.
	ctlCapDrop
)

// controlMsg carries input and checkpoint commands from the user thread
// (and the checkpoint coordinator) to a worker.
type controlMsg struct {
	op      controlOp
	stage   StageID
	epoch   int64
	cut     int64  // ctlBarrier / ctlBarrierAbort / ctlCutRetire
	hseq    uint64 // ctlCapDrop (with stage): held-capability sequence number
	records []Message
	// ctlInputFeed batch path (Input.SendBatch); the push transfers the
	// batch's reference to the worker.
	batch *batchbuf.Batch
	// checkpoint/restore rendezvous:
	cp  *checkpointState
	ack chan error
}

// mailbox is the unbounded MPSC queue feeding a worker: data batches,
// progress batches, and control messages, in arrival order. Pushes signal
// the worker if it is parked.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []mailItem
	closed   bool
	activity *atomic.Int64 // computation-wide liveness counter (watchdog)
}

func newMailbox(activity *atomic.Int64) *mailbox {
	m := &mailbox{activity: activity}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push appends an item. Items pushed after close are dropped.
func (m *mailbox) push(it mailItem) {
	m.mu.Lock()
	if !m.closed {
		m.items = append(m.items, it)
	}
	m.mu.Unlock()
	m.activity.Add(1)
	m.cond.Signal()
}

// drain removes all queued items. If block is set and the queue is empty,
// it parks until an item arrives or the mailbox closes. The second result
// is false once the mailbox is closed and drained.
func (m *mailbox) drain(block bool, spare []mailItem) ([]mailItem, bool) {
	m.mu.Lock()
	if block {
		for len(m.items) == 0 && !m.closed {
			m.cond.Wait()
		}
	}
	items := m.items
	m.items = spare[:0]
	closed := m.closed
	m.mu.Unlock()
	return items, !closed
}

// requeue prepends items ahead of everything queued, preserving their
// order — used by a crashing worker to push back the drained-but-unhandled
// suffix of its quantum so no delivery is lost across a park/revive cycle.
// The items are copied: the caller's slice aliases its drain buffer.
func (m *mailbox) requeue(items []mailItem) {
	if len(items) == 0 {
		return
	}
	m.mu.Lock()
	if !m.closed {
		merged := make([]mailItem, 0, len(items)+len(m.items))
		merged = append(merged, items...)
		merged = append(merged, m.items...)
		m.items = merged
	}
	m.mu.Unlock()
}

// empty reports whether the queue is currently empty.
func (m *mailbox) empty() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items) == 0
}

// close wakes the worker and marks the mailbox dead (used on abort).
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}
