package runtime

import (
	"sync"
	"sync/atomic"

	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// mailKind tags mailbox items.
type mailKind uint8

const (
	// mailLocalData is a record batch from a worker in the same process
	// (no serialization; Naiad's shared-memory path).
	mailLocalData mailKind = iota
	// mailRawData is a serialized record batch from another process.
	mailRawData
	// mailProgress is a progress update batch (shared read-only).
	mailProgress
	// mailControl is a runtime control message.
	mailControl
)

// mailItem is one unit of work delivered to a worker.
type mailItem struct {
	kind mailKind

	// mailLocalData: the destination vertex is implied — the receiving
	// worker hosts exactly one vertex of the connector's destination stage.
	conn    graph.ConnectorID
	time    ts.Timestamp
	records []Message

	// mailRawData:
	payload []byte

	// mailProgress:
	updates []update

	// mailControl:
	ctl *controlMsg
}

// controlOp enumerates control messages.
type controlOp uint8

const (
	ctlInputFeed controlOp = iota
	ctlInputAdvance
	ctlInputClose
	ctlCheckpoint
	ctlRestore
)

// controlMsg carries input and checkpoint commands from the user thread
// (and the checkpoint coordinator) to a worker.
type controlMsg struct {
	op      controlOp
	stage   StageID
	epoch   int64
	records []Message
	// checkpoint/restore rendezvous:
	cp  *checkpointState
	ack chan error
}

// mailbox is the unbounded MPSC queue feeding a worker: data batches,
// progress batches, and control messages, in arrival order. Pushes signal
// the worker if it is parked.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []mailItem
	closed   bool
	activity *atomic.Int64 // computation-wide liveness counter (watchdog)
}

func newMailbox(activity *atomic.Int64) *mailbox {
	m := &mailbox{activity: activity}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push appends an item. Items pushed after close are dropped.
func (m *mailbox) push(it mailItem) {
	m.mu.Lock()
	if !m.closed {
		m.items = append(m.items, it)
	}
	m.mu.Unlock()
	m.activity.Add(1)
	m.cond.Signal()
}

// drain removes all queued items. If block is set and the queue is empty,
// it parks until an item arrives or the mailbox closes. The second result
// is false once the mailbox is closed and drained.
func (m *mailbox) drain(block bool, spare []mailItem) ([]mailItem, bool) {
	m.mu.Lock()
	if block {
		for len(m.items) == 0 && !m.closed {
			m.cond.Wait()
		}
	}
	items := m.items
	m.items = spare[:0]
	closed := m.closed
	m.mu.Unlock()
	return items, !closed
}

// empty reports whether the queue is currently empty.
func (m *mailbox) empty() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items) == 0
}

// close wakes the worker and marks the mailbox dead (used on abort).
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}
