// Package runtime is the distributed Naiad runtime (§3): workers hosting
// partitions of the physical dataflow graph, data exchange via partitioning
// functions, and the distributed progress-tracking protocol coordinating
// notification delivery.
//
// A Computation simulates a cluster inside one OS process: Config.Processes
// transport domains, each hosting Config.WorkersPerProcess worker
// goroutines. All inter-process traffic is serialized through the transport
// layer (in-memory by default, real TCP loopback optionally), so the code
// paths match a networked deployment; see DESIGN.md for the substitution
// argument.
package runtime

import (
	"fmt"
	"time"

	"naiad/internal/trace"
	"naiad/internal/transport"
)

// Accumulation selects how progress updates are combined before they are
// broadcast (§3.3). The levels correspond to the Figure 6c series.
type Accumulation uint8

const (
	// AccNone broadcasts every update individually from its worker.
	AccNone Accumulation = iota
	// AccLocal combines updates at each process before broadcasting to
	// other processes ("LocalAcc").
	AccLocal
	// AccGlobal routes per-worker batches through a central cluster-level
	// accumulator that broadcasts their net effect ("GlobalAcc").
	AccGlobal
	// AccLocalGlobal combines at the process level and then at the cluster
	// level ("Local+GlobalAcc"), Naiad's default.
	AccLocalGlobal
)

// String names the accumulation mode as Figure 6c labels it.
func (a Accumulation) String() string {
	switch a {
	case AccNone:
		return "None"
	case AccLocal:
		return "LocalAcc"
	case AccGlobal:
		return "GlobalAcc"
	case AccLocalGlobal:
		return "Local+GlobalAcc"
	}
	return fmt.Sprintf("acc(%d)", uint8(a))
}

// Config sizes and parameterizes a Computation.
type Config struct {
	// Processes is the number of simulated processes (transport domains).
	Processes int
	// WorkersPerProcess is the number of worker goroutines per process.
	WorkersPerProcess int
	// Accumulation is the progress-protocol batching level; the zero value
	// is AccNone, but NewComputation defaults it to AccLocalGlobal when the
	// whole Config is zero-valued via DefaultConfig.
	Accumulation Accumulation
	// UseTCP routes inter-process traffic over real loopback TCP sockets
	// instead of the in-memory transport.
	UseTCP bool
	// Transport, when non-nil, is used instead of the built-in in-memory
	// or TCP transport. It must span exactly Processes processes. The
	// computation owns it after Start and closes it in Join. This is how
	// fault-injecting transports (transport.Chaos) are wired in.
	Transport transport.Transport
	// SafetyChecks wires a progress.SafetyMonitor through every worker:
	// ground-truth occurrence accounting plus frontier/termination
	// assertions after every applied batch and before every notification
	// delivery (see docs/protocol.md). Violations abort the computation
	// with a descriptive error from Join. For tests and chaos runs; the
	// cost is a mutex and an O(frontier×outstanding) scan per check.
	SafetyChecks bool
	// Watchdog, when positive, aborts the computation (with an error from
	// Join) if no worker observes any activity for the duration — the
	// never-hang backstop for fault-injection runs, where lost frames
	// would otherwise stall the cluster forever. Leave zero for
	// interactive computations that may legitimately sit idle between
	// epochs.
	Watchdog time.Duration
	// Heartbeat, when positive, wraps the transport in a deadline-based
	// failure detector (transport.Heartbeats): every process beats every
	// other at this interval, and a peer whose links go silent past
	// HeartbeatTimeout is suspected, aborting the computation with an error
	// from Join. Complementary to Watchdog: the watchdog notices a stalled
	// computation, the heartbeat detector notices a dead peer even while
	// the survivors still look busy.
	Heartbeat time.Duration
	// HeartbeatTimeout is the silence after which a peer is suspected;
	// zero defaults to 4×Heartbeat. Keep it several intervals wide so one
	// delayed beat is not mistaken for a death.
	HeartbeatTimeout time.Duration
	// BatchSize caps records per exchange batch; 0 means the default 1024.
	BatchSize int
	// MaxReentrancy bounds synchronous re-entrant delivery into a vertex
	// already executing (§3.2); 0 means the default of 16.
	MaxReentrancy int
	// CheckInvariants enables O(n²) progress-tracker verification after
	// every applied batch. For tests.
	CheckInvariants bool
	// DisableLocalFastPath turns off §3.2's synchronous same-worker
	// delivery, queueing every message instead. Ablation knob: the fast
	// path is what keeps system queues small and latency low.
	DisableLocalFastPath bool
	// NotificationsFirst inverts §3.2's messages-before-notifications
	// worker policy. Ablation knob: delivering messages first reduces the
	// amount of queued data.
	NotificationsFirst bool
	// Tracer, when non-nil, receives typed events and callback latencies
	// from every layer of the runtime (see internal/trace and
	// docs/observability.md). A nil Tracer costs one predictable branch per
	// hook; tracing never blocks the dataflow. The same Tracer may be
	// passed to successive incarnations of the same computation (the
	// supervisor does) and keeps accumulating.
	Tracer *trace.Tracer
}

// DefaultConfig returns a single-process, multi-worker configuration with
// Naiad's default accumulation.
func DefaultConfig(workers int) Config {
	return Config{Processes: 1, WorkersPerProcess: workers, Accumulation: AccLocalGlobal}
}

// Workers returns the total worker count.
func (c Config) Workers() int { return c.Processes * c.WorkersPerProcess }

func (c Config) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 1024
}

func (c Config) maxReentrancy() int {
	if c.MaxReentrancy > 0 {
		return c.MaxReentrancy
	}
	return 16
}

func (c Config) validate() error {
	if c.Processes <= 0 || c.WorkersPerProcess <= 0 {
		return fmt.Errorf("runtime: config needs at least one process and one worker, got %d×%d",
			c.Processes, c.WorkersPerProcess)
	}
	if c.Transport != nil && c.Transport.Processes() != c.Processes {
		return fmt.Errorf("runtime: injected transport spans %d processes, config has %d",
			c.Transport.Processes(), c.Processes)
	}
	return nil
}
