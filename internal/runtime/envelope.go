package runtime

import (
	"fmt"

	"naiad/internal/batchbuf"
	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// Data frames carry one batch of records for a single (connector, source
// vertex, destination vertex, timestamp) tuple:
//
//	connector u32 | dstVertex u32 | srcVertex u32 | epoch i64 | depth u8 |
//	counters 8·d | count u32 | records (connector codec)
//
// The source vertex identifies the logical channel (connector, srcVertex)
// the batch travelled on — the unit of barrier alignment: a cut snapshot
// logs in-flight batches per channel and a barrier marker retires exactly
// one channel.

// encodeDataInto serializes a record batch into enc. A typed column encodes
// through the connector codec's BatchCodec fast path when it has one;
// otherwise records are boxed one by one into scratch (returned for reuse)
// and encoded through the boxed interface. The frame bytes are identical
// either way.
func encodeDataInto(enc *codec.Encoder, ci *connInfo, dstVertex, srcVertex int, t ts.Timestamp, b *batchbuf.Batch, scratch []Message) []Message {
	enc.PutUint32(uint32(ci.id))
	enc.PutUint32(uint32(dstVertex))
	enc.PutUint32(uint32(srcVertex))
	enc.PutInt64(t.Epoch)
	enc.PutUint8(t.Depth)
	for i := uint8(0); i < t.Depth; i++ {
		enc.PutInt64(t.Counters[i])
	}
	n := b.Len()
	enc.PutUint32(uint32(n))
	if bc, ok := ci.cod.(codec.BatchCodec); ok {
		if bc.EncodeColumn(enc, b.Col().Slice()) {
			return scratch
		}
	}
	if boxed, ok := b.Col().Slice().([]Message); ok {
		ci.cod.EncodeBatch(enc, boxed)
		return scratch
	}
	scratch = scratch[:0]
	for i := 0; i < n; i++ {
		scratch = append(scratch, b.Record(i))
	}
	ci.cod.EncodeBatch(enc, scratch)
	clear(scratch)
	return scratch
}

// encodeData serializes a record batch into a fresh buffer the caller owns.
// Hot paths use the worker's pooled frame encoder (worker.encodeFrame)
// instead; this remains for cold callers and tests.
func encodeData(ci *connInfo, dstVertex, srcVertex int, t ts.Timestamp, records []Message) []byte {
	e := codec.NewEncoder(64)
	// The wrapper is dropped, not released: Release would reset (clear) the
	// caller's record slice, which the batch merely borrows here.
	encodeDataInto(e, ci, dstVertex, srcVertex, t, batchbuf.Wrap(records), nil)
	return e.Bytes()
}

// peekDataHeader reads only the routing fields of a data frame.
func peekDataHeader(payload []byte) (graph.ConnectorID, int) {
	d := codec.NewDecoder(payload)
	conn := graph.ConnectorID(d.Uint32())
	dstVertex := int(d.Uint32())
	return conn, dstVertex
}

// decodeDataBatch parses a full data frame into a pooled batch using the
// connector's codec: typed when the codec has a BatchCodec fast path, boxed
// otherwise. The batch is self-contained (the Codec contract forbids
// aliasing the payload), so the caller may recycle payload immediately
// after the call. The caller owns the returned batch's single reference.
func decodeDataBatch(c *Computation, payload []byte) (ci *connInfo, dstVertex, srcVertex int, t ts.Timestamp, b *batchbuf.Batch) {
	d := codec.NewDecoder(payload)
	ci = c.conn(graph.ConnectorID(d.Uint32()))
	dstVertex = int(d.Uint32())
	srcVertex = int(d.Uint32())
	t = decodeTime(d)
	n := d.Count(1)
	if bc, ok := ci.cod.(codec.BatchCodec); ok {
		if b = bc.DecodeBatchCol(d, n); b != nil {
			return ci, dstVertex, srcVertex, t, b
		}
	}
	return ci, dstVertex, srcVertex, t, batchbuf.Wrap(ci.cod.DecodeBatch(d, n))
}

// decodeData parses a full data frame into a boxed record slice.
func decodeData(c *Computation, payload []byte) (ci *connInfo, dstVertex, srcVertex int, t ts.Timestamp, records []Message) {
	d := codec.NewDecoder(payload)
	ci = c.conn(graph.ConnectorID(d.Uint32()))
	dstVertex = int(d.Uint32())
	srcVertex = int(d.Uint32())
	t = decodeTime(d)
	n := d.Count(1)
	records = ci.cod.DecodeBatch(d, n)
	return ci, dstVertex, srcVertex, t, records
}

// decodeTime reads the wire form of a timestamp (epoch, depth, counters)
// and rebuilds it through the constructor, so the counters-beyond-Depth-
// are-zero invariant holds even for corrupt input.
func decodeTime(d *codec.Decoder) ts.Timestamp {
	epoch := d.Int64()
	depth := d.Uint8()
	if depth > ts.MaxLoopDepth {
		panic(fmt.Sprintf("runtime: corrupt frame: timestamp depth %d", depth))
	}
	var counters [ts.MaxLoopDepth]int64
	for i := uint8(0); i < depth; i++ {
		counters[i] = d.Int64()
	}
	return ts.Make(epoch, counters[:depth]...)
}
