package runtime

import (
	"fmt"

	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// Data frames carry one batch of records for a single (connector, source
// vertex, destination vertex, timestamp) tuple:
//
//	connector u32 | dstVertex u32 | srcVertex u32 | epoch i64 | depth u8 |
//	counters 8·d | count u32 | records (connector codec)
//
// The source vertex identifies the logical channel (connector, srcVertex)
// the batch travelled on — the unit of barrier alignment: a cut snapshot
// logs in-flight batches per channel and a barrier marker retires exactly
// one channel.

// encodeData serializes a record batch for transmission.
func encodeData(ci *connInfo, dstVertex, srcVertex int, t ts.Timestamp, records []Message) []byte {
	e := codec.NewEncoder(32 + 16*len(records))
	e.PutUint32(uint32(ci.id))
	e.PutUint32(uint32(dstVertex))
	e.PutUint32(uint32(srcVertex))
	e.PutInt64(t.Epoch)
	e.PutUint8(t.Depth)
	for i := uint8(0); i < t.Depth; i++ {
		e.PutInt64(t.Counters[i])
	}
	e.PutUint32(uint32(len(records)))
	ci.cod.EncodeBatch(e, records)
	return e.Bytes()
}

// peekDataHeader reads only the routing fields of a data frame.
func peekDataHeader(payload []byte) (graph.ConnectorID, int) {
	d := codec.NewDecoder(payload)
	conn := graph.ConnectorID(d.Uint32())
	dstVertex := int(d.Uint32())
	return conn, dstVertex
}

// decodeData parses a full data frame using the connector's codec.
func decodeData(c *Computation, payload []byte) (ci *connInfo, dstVertex, srcVertex int, t ts.Timestamp, records []Message) {
	d := codec.NewDecoder(payload)
	ci = c.conn(graph.ConnectorID(d.Uint32()))
	dstVertex = int(d.Uint32())
	srcVertex = int(d.Uint32())
	t = decodeTime(d)
	n := d.Count(1)
	records = ci.cod.DecodeBatch(d, n)
	return ci, dstVertex, srcVertex, t, records
}

// decodeTime reads the wire form of a timestamp (epoch, depth, counters)
// and rebuilds it through the constructor, so the counters-beyond-Depth-
// are-zero invariant holds even for corrupt input.
func decodeTime(d *codec.Decoder) ts.Timestamp {
	epoch := d.Int64()
	depth := d.Uint8()
	if depth > ts.MaxLoopDepth {
		panic(fmt.Sprintf("runtime: corrupt frame: timestamp depth %d", depth))
	}
	var counters [ts.MaxLoopDepth]int64
	for i := uint8(0); i < depth; i++ {
		counters[i] = d.Int64()
	}
	return ts.Make(epoch, counters[:depth]...)
}
