package runtime

import (
	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// Data frames carry one batch of records for a single (connector,
// destination vertex, timestamp) triple:
//
//	connector u32 | dstVertex u32 | epoch i64 | depth u8 | counters 8·d |
//	count u32 | records (connector codec)

// encodeData serializes a record batch for transmission.
func encodeData(ci *connInfo, dstVertex int, t ts.Timestamp, records []Message) []byte {
	e := codec.NewEncoder(32 + 16*len(records))
	e.PutUint32(uint32(ci.id))
	e.PutUint32(uint32(dstVertex))
	e.PutInt64(t.Epoch)
	e.PutUint8(t.Depth)
	for i := uint8(0); i < t.Depth; i++ {
		e.PutInt64(t.Counters[i])
	}
	e.PutUint32(uint32(len(records)))
	ci.cod.EncodeBatch(e, records)
	return e.Bytes()
}

// peekDataHeader reads only the routing fields of a data frame.
func peekDataHeader(payload []byte) (graph.ConnectorID, int) {
	d := codec.NewDecoder(payload)
	conn := graph.ConnectorID(d.Uint32())
	dstVertex := int(d.Uint32())
	return conn, dstVertex
}

// decodeData parses a full data frame using the connector's codec.
func decodeData(c *Computation, payload []byte) (ci *connInfo, dstVertex int, t ts.Timestamp, records []Message) {
	d := codec.NewDecoder(payload)
	ci = c.conn(graph.ConnectorID(d.Uint32()))
	dstVertex = int(d.Uint32())
	t.Epoch = d.Int64()
	t.Depth = d.Uint8()
	for i := uint8(0); i < t.Depth; i++ {
		t.Counters[i] = d.Int64()
	}
	n := d.Count(1)
	records = ci.cod.DecodeBatch(d, n)
	return ci, dstVertex, t, records
}
