package runtime

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/progress"
	"naiad/internal/testutil"
	ts "naiad/internal/timestamp"
	"naiad/internal/transport"
)

// buildCounterCfg is buildCounter with a caller-supplied Config: the
// two-stage counter pipeline whose epoch-2 output ([113] for the standard
// feed) is the reference for crash-recovery chaos runs. Note the running
// total a counterVertex emits for *non-final* epochs depends on how far
// notifications lag behind data — only the final epoch is delay-invariant.
func buildCounterCfg(t *testing.T, cfg Config) (*Computation, *Input, *sink, *Probe) {
	t.Helper()
	return buildPipeline(t, cfg, func(ctx *Context) Vertex {
		return &counterVertex{ctx: ctx}
	})
}

// epochSumVertex sums values per epoch and emits each epoch's own sum at
// its notification: unlike counterVertex's running total, the output is
// invariant under any delivery delay the chaos transport injects, which
// makes it the right probe for output equivalence across fault schedules.
type epochSumVertex struct {
	ctx  *Context
	sums map[int64]int64
}

func (v *epochSumVertex) OnRecv(_ int, msg Message, t ts.Timestamp) {
	if v.sums == nil {
		v.sums = make(map[int64]int64)
	}
	if _, seen := v.sums[t.Epoch]; !seen {
		v.ctx.NotifyAt(t)
	}
	v.sums[t.Epoch] += msg.(int64)
}

func (v *epochSumVertex) OnNotify(t ts.Timestamp) {
	v.ctx.SendBy(0, v.sums[t.Epoch], t)
	delete(v.sums, t.Epoch)
}

func buildEpochSum(t *testing.T, cfg Config) (*Computation, *Input, *sink, *Probe) {
	t.Helper()
	return buildPipeline(t, cfg, func(ctx *Context) Vertex {
		return &epochSumVertex{ctx: ctx}
	})
}

func buildPipeline(t *testing.T, cfg Config, mk func(*Context) Vertex) (*Computation, *Input, *sink, *Probe) {
	t.Helper()
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	ctr := c.AddStage("counter", graph.RoleNormal, 0, mk, Pinned(0))
	c.Connect(in.Stage(), 0, ctr, func(Message) uint64 { return 0 }, codec.Int64())
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(ctr, 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	probe := c.NewProbe(snk)
	return c, in, s, probe
}

func feedCounter(in *Input) {
	in.OnNext(int64(1), int64(2))
	in.OnNext(int64(10))
	in.OnNext(int64(100))
	in.Close()
}

func checkEpochSums(t *testing.T, s *sink) {
	t.Helper()
	for e, want := range map[int64]string{0: "[3]", 1: "[10]", 2: "[100]"} {
		if got := fmt.Sprint(s.sorted(e)); got != want {
			t.Errorf("epoch %d output = %v, want %v", e, got, want)
		}
	}
}

// TestChaosSchedulesOutputEquivalent runs the counter pipeline under
// distinct fault schedules — latency+jitter, a straggler link, bandwidth
// throttling, a partition that heals, and uncombined progress frames under
// jitter — each with the safety monitor on and a watchdog as the
// never-hang backstop. Every schedule must complete with outputs identical
// to the fault-free reference.
func TestChaosSchedulesOutputEquivalent(t *testing.T) {
	progress.AuditCaps(t)
	seed := testutil.Seed(t)
	base := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal,
		SafetyChecks: true, Watchdog: 20 * time.Second}
	accNone := base
	accNone.Accumulation = AccNone
	schedules := []struct {
		name string
		cfg  Config
		ch   transport.ChaosConfig
	}{
		{"latency-jitter", base, transport.ChaosConfig{
			Seed:    seed,
			Default: transport.Fault{Latency: 2 * time.Millisecond, Jitter: 5 * time.Millisecond},
		}},
		{"straggler-link", base, transport.ChaosConfig{
			Seed: seed,
			Links: map[transport.Link]transport.Fault{
				{From: 0, To: 1}: {Latency: 60 * time.Millisecond},
			},
		}},
		{"throttle", base, transport.ChaosConfig{
			Seed:    seed,
			Default: transport.Fault{BytesPerSecond: 20_000},
		}},
		{"partition-heal", base, transport.ChaosConfig{
			Seed: seed,
			Partition: &transport.Partition{
				Groups: [][]int{{0}, {1}}, Start: 0, Duration: 300 * time.Millisecond,
			},
		}},
		{"accnone-jitter", accNone, transport.ChaosConfig{
			Seed:    seed,
			Default: transport.Fault{Latency: time.Millisecond, Jitter: 3 * time.Millisecond},
		}},
	}
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			cfg := sc.cfg
			cfg.Transport = transport.NewChaos(transport.NewMem(cfg.Processes), sc.ch)
			c, in, s, _ := buildEpochSum(t, cfg)
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
			feedCounter(in)
			if err := c.Join(); err != nil {
				t.Fatalf("chaos run failed: %v", err)
			}
			checkEpochSums(t, s)
		})
	}
}

// TestChaosCrashSurfacesFromJoin kills a process mid-computation: Join
// must return a descriptive error within a bounded time — never hang on
// frames that will never arrive.
func TestChaosCrashSurfacesFromJoin(t *testing.T) {
	progress.AuditCaps(t)
	ct := transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
		Seed:    testutil.Seed(t),
		Default: transport.Fault{Latency: 2 * time.Millisecond},
	})
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal,
		Transport: ct, Watchdog: 20 * time.Second}
	c, in, _, _ := buildCounterCfg(t, cfg)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2))
	ct.Crash(1)
	in.Close() // dropped by closed mailboxes after the abort; must not panic

	errCh := make(chan error, 1)
	go func() { errCh <- c.Join() }()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "crashed") {
			t.Fatalf("Join = %v, want a crash error", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Join hung after a process crash")
	}
}

// TestChaosCrashThenCheckpointRecovery is the crash+restore schedule: run
// two epochs, checkpoint, crash a process during epoch 2, then recover
// from the snapshot on a fresh cluster. The union of outputs observed
// before the crash and outputs of the recovered run must equal the
// fault-free reference — no lost epochs, no re-executed ones.
func TestChaosCrashThenCheckpointRecovery(t *testing.T) {
	progress.AuditCaps(t)
	ct := transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
		Seed:    testutil.Seed(t),
		Default: transport.Fault{Latency: time.Millisecond, Jitter: 2 * time.Millisecond},
	})
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal,
		Transport: ct, Watchdog: 20 * time.Second}
	orig, in, s, probe := buildCounterCfg(t, cfg)
	if err := orig.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2))
	in.OnNext(int64(10))
	probe.WaitFor(1)
	snap, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(100)) // epoch 2 is in flight when the crash hits
	ct.Crash(1)
	if err := orig.Join(); err == nil || !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("Join = %v, want a crash error", err)
	}
	preCrash := s.sorted(2) // possibly empty, possibly already [113]

	// Recover on a fresh fault-free cluster and replay epoch 2.
	rec, rin, rs, _ := buildCounter(t)
	if err := rec.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Restore(DecodeSnapshot(EncodeSnapshot(snap))); err != nil {
		t.Fatal(err)
	}
	if rin.Epoch() != 2 {
		t.Fatalf("restored input epoch = %d, want 2", rin.Epoch())
	}
	rin.OnNext(int64(100))
	rin.Close()
	if err := rec.Join(); err != nil {
		t.Fatal(err)
	}
	// Union invariant vs the fault-free reference.
	union := map[int64]bool{}
	for _, v := range preCrash {
		union[v] = true
	}
	for _, v := range rs.sorted(2) {
		union[v] = true
	}
	if len(union) != 1 || !union[113] {
		t.Fatalf("epoch 2 union = %v, want exactly {113}", union)
	}
	if got := rs.sorted(0); len(got) != 0 {
		t.Fatalf("recovered run re-executed epoch 0: %v", got)
	}
}

// TestChaosPartitionWatchdogAbortThenReplayRecovery: an unhealed partition
// stalls the computation without any crash signal, so the watchdog is the
// detector that must fire. Recovery then replays the whole input on a
// fresh cluster (nothing was checkpointed) and must match the fault-free
// result — the degenerate "restore from nothing" end of the recovery
// spectrum that internal/supervise exercises automatically.
func TestChaosPartitionWatchdogAbortThenReplayRecovery(t *testing.T) {
	progress.AuditCaps(t)
	ct := transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
		Seed:      testutil.Seed(t),
		Partition: &transport.Partition{Groups: [][]int{{0}, {1}}, Duration: time.Hour},
	})
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal,
		Transport: ct, Watchdog: 300 * time.Millisecond}
	c, in, _, _ := buildCounterCfg(t, cfg)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	feedCounter(in)
	errCh := make(chan error, 1)
	go func() { errCh <- c.Join() }()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "watchdog") {
			t.Fatalf("Join = %v, want a watchdog stall", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("partitioned computation hung past its watchdog")
	}
	if !c.Failed() || c.Err() == nil {
		t.Fatal("Failed()/Err() do not reflect the watchdog abort")
	}

	// Replay-from-scratch recovery on a healthy cluster.
	rec, rin, rs, _ := buildCounter(t)
	if err := rec.Start(); err != nil {
		t.Fatal(err)
	}
	feedCounter(rin)
	if err := rec.Join(); err != nil {
		t.Fatal(err)
	}
	if got := rs.sorted(2); len(got) != 1 || got[0] != 113 {
		t.Fatalf("recovered epoch 2 = %v, want [113]", got)
	}
}

// TestChaosFIFOViolationCaughtByMonitor is the negative test: a transport
// that breaks per-link FIFO attacks the one delivery assumption the
// progress protocol's safety proof needs. Under AccNone each occurrence
// update travels as its own frame, so reordering splits a causal
// [+child, -parent] pair across the wire — and the safety monitor must
// catch the resulting local-frontier overrun loudly instead of letting
// the computation deliver early notifications or terminate wrongly.
func TestChaosFIFOViolationCaughtByMonitor(t *testing.T) {
	progress.AuditCaps(t)
	base := testutil.Seed(t)
	// Whether a reorder materializes a *causally* bad interleaving depends
	// on queue occupancy, so drive a few derived seeds; the monitor must
	// catch at least one (in practice the first). A violation may also trip
	// the tracker's own precursor-count panic first — that is a correct
	// loud failure too, but the acceptance bar here is the monitor, so such
	// runs retry rather than pass.
	var outcomes []string
	for attempt := int64(0); attempt < 8; attempt++ {
		err := runFIFOViolation(t, base+attempt)
		if err != nil && strings.Contains(err.Error(), "safety violation") {
			t.Logf("monitor caught it: %v", err)
			return
		}
		outcomes = append(outcomes, fmt.Sprintf("seed %d: %v", base+attempt, err))
	}
	t.Fatalf("monitor never caught the FIFO violation:\n%s", strings.Join(outcomes, "\n"))
}

func runFIFOViolation(t *testing.T, seed int64) error {
	t.Helper()
	ct := transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
		Seed:    seed,
		Default: transport.Fault{Latency: 15 * time.Millisecond, ReorderProb: 1},
	})
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccNone,
		Transport: ct, SafetyChecks: true, Watchdog: 5 * time.Second}
	c, in, _, _ := buildCounterCfg(t, cfg)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		in.OnNext(int64(e), int64(e+1), int64(e+2))
	}
	in.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- c.Join() }()
	select {
	case err := <-errCh:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("FIFO-violating run hung past its watchdog")
		return nil
	}
}

// TestVertexPanicUnderChaosDelay: a vertex panic must abort the cluster
// and surface from Join within a bounded timeout even while chaos-induced
// delivery delays keep frames in flight.
func TestVertexPanicUnderChaosDelay(t *testing.T) {
	progress.AuditCaps(t)
	ct := transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
		Seed:    testutil.Seed(t),
		Default: transport.Fault{Latency: 10 * time.Millisecond, Jitter: 10 * time.Millisecond},
	})
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal,
		Transport: ct, Watchdog: 20 * time.Second}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	bomb := c.AddStage("bomb", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &mapVertex{ctx: ctx, f: func(v int64) int64 {
			if v == 666 {
				panic("vertex bomb went off")
			}
			return v
		}}
	})
	c.Connect(in.Stage(), 0, bomb, hashPart, codec.Int64())
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(bomb, 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2), int64(3))
	in.OnNext(int64(666))
	in.Close()

	errCh := make(chan error, 1)
	go func() { errCh <- c.Join() }()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "vertex bomb went off") {
			t.Fatalf("Join = %v, want the vertex panic", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("vertex panic under delivery delay did not abort within the bound")
	}
}

// dropTransport silently discards frames the predicate selects — the
// pathology (lost frames without a crash signal) only a watchdog can turn
// into a loud failure.
type dropTransport struct {
	transport.Transport
	drop func(from, to int, kind transport.Kind) bool
}

func (d *dropTransport) Send(from, to int, kind transport.Kind, payload []byte) {
	if d.drop(from, to, kind) {
		return
	}
	d.Transport.Send(from, to, kind, payload)
}

// TestWatchdogAbortsSilentStall: when cross-process progress frames
// vanish, the cluster can never drain; the watchdog must abort with a
// descriptive error instead of hanging Join forever.
func TestWatchdogAbortsSilentStall(t *testing.T) {
	cfg := Config{Processes: 2, WorkersPerProcess: 1, Accumulation: AccLocalGlobal,
		Watchdog: 300 * time.Millisecond,
		Transport: &dropTransport{
			Transport: transport.NewMem(2),
			drop: func(from, to int, kind transport.Kind) bool {
				return from != to && kind == transport.KindProgress
			},
		}}
	c, in, _, _ := buildCounterCfg(t, cfg)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	feedCounter(in)
	errCh := make(chan error, 1)
	go func() { errCh <- c.Join() }()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "watchdog") {
			t.Fatalf("Join = %v, want a watchdog stall error", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("stalled computation did not trip the watchdog")
	}
}

// TestCheckpointAfterAbortErrors: a checkpoint rendezvous issued against
// an aborted computation must return the failure, not hang on worker acks
// that will never come.
func TestCheckpointAfterAbortErrors(t *testing.T) {
	c, in, _, _ := buildCounterCfg(t, Config{Processes: 1, WorkersPerProcess: 2,
		Accumulation: AccLocalGlobal})
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1))
	c.Abort(fmt.Errorf("operator pulled the plug"))
	done := make(chan error, 1)
	go func() {
		_, err := c.Checkpoint()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "abort") {
			t.Fatalf("Checkpoint after abort = %v, want an abort error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Checkpoint hung on an aborted computation")
	}
	in.Close()
	if err := c.Join(); err == nil || !strings.Contains(err.Error(), "pulled the plug") {
		t.Fatalf("Join = %v, want the abort error", err)
	}
}

// TestChaosTransportProcessMismatch: config validation rejects an injected
// transport spanning the wrong number of processes.
func TestChaosTransportProcessMismatch(t *testing.T) {
	_, err := NewComputation(Config{Processes: 2, WorkersPerProcess: 1,
		Transport: transport.NewMem(3)})
	if err == nil || !strings.Contains(err.Error(), "transport spans") {
		t.Fatalf("err = %v, want a span mismatch error", err)
	}
}

// TestSafetyChecksCleanOnAllAccumulations: the monitor must produce no
// false positives on a healthy cluster under any accumulation mode and a
// mildly adversarial (but FIFO-preserving) transport.
func TestSafetyChecksCleanOnAllAccumulations(t *testing.T) {
	progress.AuditCaps(t)
	seed := testutil.Seed(t)
	for _, acc := range []Accumulation{AccNone, AccLocal, AccGlobal, AccLocalGlobal} {
		t.Run(acc.String(), func(t *testing.T) {
			cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: acc,
				SafetyChecks: true, Watchdog: 20 * time.Second,
				Transport: transport.NewChaos(transport.NewMem(2), transport.ChaosConfig{
					Seed:    seed,
					Default: transport.Fault{Jitter: 2 * time.Millisecond},
				})}
			c, in, s, _ := buildEpochSum(t, cfg)
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
			feedCounter(in)
			if err := c.Join(); err != nil {
				t.Fatalf("monitor false positive under %v: %v", acc, err)
			}
			checkEpochSums(t, s)
		})
	}
}
