package runtime

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"naiad/internal/codec"
	"naiad/internal/trace"
)

// Checkpointer is the fault tolerance interface of §3.4: stateful vertices
// serialize their state on demand and reconstruct it on recovery. Both
// calls run on the vertex's owning worker thread, so no locking is needed.
type Checkpointer interface {
	Checkpoint(enc *codec.Encoder)
	Restore(dec *codec.Decoder)
}

// Snapshot is a consistent checkpoint of every stateful vertex plus the
// input epoch positions, taken across all workers (§3.4). Snapshots are
// taken at epoch boundaries: the caller quiesces the computation first
// (stop feeding, wait on a probe), which is the "pause and flush" step of
// the paper's protocol.
type Snapshot struct {
	Vertices    map[StageID]map[int][]byte // stage → vertex index → state
	InputEpochs map[StageID]int64
}

// checkpointState is the rendezvous object shared by the workers while a
// checkpoint or restore is in progress. cut is set when restoring an
// asynchronous-barrier cut: vertex fragments travel in snap, and the cut's
// pending notifications and in-flight channel batches ride alongside.
type checkpointState struct {
	mu   sync.Mutex
	snap *Snapshot
	cut  *CutSnapshot
}

// Checkpoint pauses each worker in turn at a quantum boundary, flushes its
// queued deliveries, and serializes every vertex implementing
// Checkpointer. Call it only when the fed epochs have completed (e.g.
// after Probe.WaitFor); checkpointing a computation with in-flight work
// returns an inconsistent snapshot.
func (c *Computation) Checkpoint() (*Snapshot, error) {
	if !c.started {
		return nil, fmt.Errorf("runtime: Checkpoint before Start")
	}
	snap := &Snapshot{
		Vertices:    make(map[StageID]map[int][]byte),
		InputEpochs: make(map[StageID]int64),
	}
	for _, in := range c.inputs {
		snap.InputEpochs[in.stage] = in.Epoch()
	}
	cp := &checkpointState{snap: snap}
	if err := c.rendezvous(ctlCheckpoint, cp); err != nil {
		return nil, err
	}
	return snap, nil
}

// UnknownStageError reports a snapshot that references a StageID the
// current graph does not have — typically a snapshot taken from an older
// build of the dataflow. Restoring it would silently drop the orphaned
// state, so Restore rejects it before touching any vertex.
type UnknownStageError struct {
	Stage StageID
}

func (e *UnknownStageError) Error() string {
	return fmt.Sprintf("runtime: snapshot references stage %d, which this graph does not have", e.Stage)
}

// Restore loads a snapshot into a freshly started computation: vertex
// states are handed to Restore on their owning workers, and the inputs are
// advanced to their checkpointed epochs so the progress protocol accounts
// for the skipped epochs.
//
// Input epochs only move forward: a snapshot whose InputEpochs entry is ≤
// the input's current epoch leaves that input where it is (AdvanceTo is
// skipped), because epochs are monotone in the progress protocol and
// rewinding one would violate the frontier invariant. The normal recovery
// flow — rebuild the graph, Start, Restore — always restores into inputs
// at epoch 0, so every checkpointed position wins; only a caller restoring
// into a computation that has already been fed can observe the skip.
//
// A snapshot referencing a StageID outside the graph (in Vertices or
// InputEpochs) is rejected with *UnknownStageError before any vertex state
// is touched.
func (c *Computation) Restore(snap *Snapshot) error {
	if !c.started {
		return fmt.Errorf("runtime: Restore before Start")
	}
	for sid := range snap.Vertices {
		if int(sid) < 0 || int(sid) >= len(c.stages) {
			return &UnknownStageError{Stage: sid}
		}
	}
	for sid := range snap.InputEpochs {
		if int(sid) < 0 || int(sid) >= len(c.stages) {
			return &UnknownStageError{Stage: sid}
		}
	}
	cp := &checkpointState{snap: snap}
	if err := c.rendezvous(ctlRestore, cp); err != nil {
		return err
	}
	for _, in := range c.inputs {
		if e, ok := snap.InputEpochs[in.stage]; ok && e > in.Epoch() {
			in.AdvanceTo(e)
		}
	}
	return nil
}

// RestoreCut loads an asynchronous-barrier cut into a freshly started
// computation. Cut fragments sit exactly on the cut's epoch boundary, so a
// full restore is the same operation as restoring a stop-the-world
// Snapshot taken there: vertex fragments restore on their owning workers
// and the inputs advance to their cut positions. The caller owns
// redelivery of everything past the boundary — exactly as for Restore —
// by replaying its input log from the restored epochs; that replay also
// regenerates the cut's pending notifications and deferred channel
// batches, which therefore must NOT be re-injected here (doing so would
// deliver them twice). They exist for selective rollback (ReviveWorker),
// where the delivery log — not a replayed feed — reconstructs the
// post-boundary execution. The same forward-only input rule and
// UnknownStageError validation as Restore apply.
func (c *Computation) RestoreCut(cut *CutSnapshot) error {
	if !c.started {
		return fmt.Errorf("runtime: RestoreCut before Start")
	}
	for sid := range cut.Vertices {
		if int(sid) < 0 || int(sid) >= len(c.stages) {
			return &UnknownStageError{Stage: sid}
		}
	}
	for sid := range cut.InputEpochs {
		if int(sid) < 0 || int(sid) >= len(c.stages) {
			return &UnknownStageError{Stage: sid}
		}
	}
	cp := &checkpointState{
		snap: &Snapshot{Vertices: cut.Vertices, InputEpochs: cut.InputEpochs},
		cut:  cut,
	}
	if err := c.rendezvous(ctlRestore, cp); err != nil {
		return err
	}
	for _, in := range c.inputs {
		if e, ok := cut.InputEpochs[in.stage]; ok && e > in.Epoch() {
			in.AdvanceTo(e)
		}
	}
	return nil
}

// rendezvous sends a control message to every worker and collects acks.
// Mailboxes drop pushes after an abort, so the wait also watches the abort
// channel: a crashed or aborted computation makes Checkpoint/Restore return
// the failure instead of hanging on acks that will never come.
func (c *Computation) rendezvous(op controlOp, cp *checkpointState) error {
	acks := make([]chan error, len(c.workers))
	for i, w := range c.workers {
		acks[i] = make(chan error, 1)
		w.mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{op: op, cp: cp, ack: acks[i]}})
	}
	var first error
	for _, ack := range acks {
		select {
		case err := <-ack:
			if err != nil && first == nil {
				first = err
			}
		case <-c.abortCh:
			c.failMu.Lock()
			err := c.failErr
			c.failMu.Unlock()
			return fmt.Errorf("runtime: checkpoint rendezvous interrupted by abort: %w", err)
		}
	}
	return first
}

// checkpointVertices runs on the worker thread: it flushes queued local
// deliveries and serializes the worker's stateful vertices.
func (w *worker) checkpointVertices(cp *checkpointState) error {
	var t0 int64
	if w.tracer != nil {
		t0 = w.tracer.Now()
	}
	w.deliverAll()
	for _, vs := range w.vsList {
		cpr, ok := vs.vertex.(Checkpointer)
		if !ok {
			continue
		}
		enc := codec.NewEncoder(256)
		cpr.Checkpoint(enc)
		cp.mu.Lock()
		m := cp.snap.Vertices[vs.si.id]
		if m == nil {
			m = make(map[int][]byte)
			cp.snap.Vertices[vs.si.id] = m
		}
		m[vs.vertexIdx] = append([]byte(nil), enc.Bytes()...)
		cp.mu.Unlock()
	}
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{
			Kind: trace.EvCheckpoint, Worker: int32(w.id), Stage: -1, Loc: -1,
			Epoch: -1, Dur: w.tracer.Now() - t0,
		})
	}
	return nil
}

// restoreVertices runs on the worker thread: it hands each stateful vertex
// its checkpointed bytes.
func (w *worker) restoreVertices(cp *checkpointState) error {
	var t0 int64
	if w.tracer != nil {
		t0 = w.tracer.Now()
	}
	for _, vs := range w.vsList {
		cpr, ok := vs.vertex.(Checkpointer)
		if !ok {
			continue
		}
		cp.mu.Lock()
		data, found := cp.snap.Vertices[vs.si.id][vs.vertexIdx]
		cp.mu.Unlock()
		if !found {
			continue
		}
		cpr.Restore(codec.NewDecoder(data))
	}
	if cut := cp.cut; cut != nil {
		if err := w.restoreCutExtras(cut); err != nil {
			return err
		}
	}
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{
			Kind: trace.EvRestore, Worker: int32(w.id), Stage: -1, Loc: -1,
			Epoch: -1, Dur: w.tracer.Now() - t0,
		})
	}
	return nil
}

// restoreCutExtras records the cut as the worker's revival baseline for
// selective rollback before the next complete cut. Nothing else from the
// cut is applied on a full restore: the fragments sit exactly on the cut's
// epoch boundary, and the feeding client's replay of every epoch at or
// past it regenerates the cut's pending notifications and deferred channel
// batches — applying them here too would deliver each twice. The baseline
// is stripped to what was actually applied (fragments and input positions)
// so a later snap-less revival replays the whole post-restore delivery log
// against the same starting state the live worker had.
func (w *worker) restoreCutExtras(cut *CutSnapshot) error {
	w.restoredCut = &CutSnapshot{
		Cut: cut.Cut, Epoch: cut.Epoch,
		Vertices: cut.Vertices, InputEpochs: cut.InputEpochs,
	}
	return nil
}

// Snapshot wire format: a fixed 12-byte header — magic "NSNP", format
// version, CRC-32C of the body — followed by the codec-encoded body. The
// header lets the on-disk store reject truncated, bit-rotted, or
// foreign-format files with a clean error instead of restoring garbage
// state into a live computation.
const (
	snapshotMagic      = 0x4e534e50 // "NSNP"
	snapshotVersion    = 1
	snapshotHeaderSize = 12
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// EncodeSnapshot serializes a snapshot for durable storage, framed with
// the versioned, checksummed snapshot header.
func EncodeSnapshot(s *Snapshot) []byte {
	enc := codec.NewEncoder(1024)
	enc.PutUint32(uint32(len(s.Vertices)))
	for sid, m := range s.Vertices {
		enc.PutUint32(uint32(sid))
		enc.PutUint32(uint32(len(m)))
		for idx, data := range m {
			enc.PutUint32(uint32(idx))
			enc.PutBytes(data)
		}
	}
	enc.PutUint32(uint32(len(s.InputEpochs)))
	for sid, e := range s.InputEpochs {
		enc.PutUint32(uint32(sid))
		enc.PutInt64(e)
	}
	body := enc.Bytes()
	out := make([]byte, snapshotHeaderSize+len(body))
	binary.LittleEndian.PutUint32(out[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(out[4:8], snapshotVersion)
	binary.LittleEndian.PutUint32(out[8:12], crc32.Checksum(body, snapshotCRC))
	copy(out[snapshotHeaderSize:], body)
	return out
}

// UnmarshalSnapshot parses a serialized snapshot, validating the header,
// version, and body checksum. Untrusted bytes (a file off disk) never
// panic: structural damage surfaces as an error.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapshotHeaderSize {
		return nil, fmt.Errorf("runtime: snapshot too short: %d bytes", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != snapshotMagic {
		return nil, fmt.Errorf("runtime: bad snapshot magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != snapshotVersion {
		return nil, fmt.Errorf("runtime: unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	body := data[snapshotHeaderSize:]
	if sum := crc32.Checksum(body, snapshotCRC); sum != binary.LittleEndian.Uint32(data[8:12]) {
		return nil, fmt.Errorf("runtime: snapshot checksum mismatch: body is corrupt")
	}
	s := &Snapshot{
		Vertices:    make(map[StageID]map[int][]byte),
		InputEpochs: make(map[StageID]int64),
	}
	err := codec.Catch(func() {
		dec := codec.NewDecoder(body)
		for n := int(dec.Uint32()); n > 0; n-- {
			sid := StageID(dec.Uint32())
			m := make(map[int][]byte)
			for k := int(dec.Uint32()); k > 0; k-- {
				idx := int(dec.Uint32())
				m[idx] = append([]byte(nil), dec.BytesView()...)
			}
			s.Vertices[sid] = m
		}
		for n := int(dec.Uint32()); n > 0; n-- {
			sid := StageID(dec.Uint32())
			s.InputEpochs[sid] = dec.Int64()
		}
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeSnapshot parses a serialized snapshot, panicking on malformed
// input. Use UnmarshalSnapshot for bytes that crossed a trust boundary.
func DecodeSnapshot(data []byte) *Snapshot {
	s, err := UnmarshalSnapshot(data)
	if err != nil {
		panic(err)
	}
	return s
}
