package runtime

import (
	"fmt"
	"sync"

	"naiad/internal/codec"
)

// Checkpointer is the fault tolerance interface of §3.4: stateful vertices
// serialize their state on demand and reconstruct it on recovery. Both
// calls run on the vertex's owning worker thread, so no locking is needed.
type Checkpointer interface {
	Checkpoint(enc *codec.Encoder)
	Restore(dec *codec.Decoder)
}

// Snapshot is a consistent checkpoint of every stateful vertex plus the
// input epoch positions, taken across all workers (§3.4). Snapshots are
// taken at epoch boundaries: the caller quiesces the computation first
// (stop feeding, wait on a probe), which is the "pause and flush" step of
// the paper's protocol.
type Snapshot struct {
	Vertices    map[StageID]map[int][]byte // stage → vertex index → state
	InputEpochs map[StageID]int64
}

// checkpointState is the rendezvous object shared by the workers while a
// checkpoint or restore is in progress.
type checkpointState struct {
	mu   sync.Mutex
	snap *Snapshot
}

// Checkpoint pauses each worker in turn at a quantum boundary, flushes its
// queued deliveries, and serializes every vertex implementing
// Checkpointer. Call it only when the fed epochs have completed (e.g.
// after Probe.WaitFor); checkpointing a computation with in-flight work
// returns an inconsistent snapshot.
func (c *Computation) Checkpoint() (*Snapshot, error) {
	if !c.started {
		return nil, fmt.Errorf("runtime: Checkpoint before Start")
	}
	snap := &Snapshot{
		Vertices:    make(map[StageID]map[int][]byte),
		InputEpochs: make(map[StageID]int64),
	}
	for _, in := range c.inputs {
		snap.InputEpochs[in.stage] = in.Epoch()
	}
	cp := &checkpointState{snap: snap}
	if err := c.rendezvous(ctlCheckpoint, cp); err != nil {
		return nil, err
	}
	return snap, nil
}

// Restore loads a snapshot into a freshly started computation: vertex
// states are handed to Restore on their owning workers, and the inputs are
// advanced to their checkpointed epochs so the progress protocol accounts
// for the skipped epochs.
func (c *Computation) Restore(snap *Snapshot) error {
	if !c.started {
		return fmt.Errorf("runtime: Restore before Start")
	}
	cp := &checkpointState{snap: snap}
	if err := c.rendezvous(ctlRestore, cp); err != nil {
		return err
	}
	for _, in := range c.inputs {
		if e, ok := snap.InputEpochs[in.stage]; ok && e > in.Epoch() {
			in.AdvanceTo(e)
		}
	}
	return nil
}

// rendezvous sends a control message to every worker and collects acks.
// Mailboxes drop pushes after an abort, so the wait also watches the abort
// channel: a crashed or aborted computation makes Checkpoint/Restore return
// the failure instead of hanging on acks that will never come.
func (c *Computation) rendezvous(op controlOp, cp *checkpointState) error {
	acks := make([]chan error, len(c.workers))
	for i, w := range c.workers {
		acks[i] = make(chan error, 1)
		w.mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{op: op, cp: cp, ack: acks[i]}})
	}
	var first error
	for _, ack := range acks {
		select {
		case err := <-ack:
			if err != nil && first == nil {
				first = err
			}
		case <-c.abortCh:
			c.failMu.Lock()
			err := c.failErr
			c.failMu.Unlock()
			return fmt.Errorf("runtime: checkpoint rendezvous interrupted by abort: %w", err)
		}
	}
	return first
}

// checkpointVertices runs on the worker thread: it flushes queued local
// deliveries and serializes the worker's stateful vertices.
func (w *worker) checkpointVertices(cp *checkpointState) error {
	w.deliverAll()
	for _, vs := range w.vsList {
		cpr, ok := vs.vertex.(Checkpointer)
		if !ok {
			continue
		}
		enc := codec.NewEncoder(256)
		cpr.Checkpoint(enc)
		cp.mu.Lock()
		m := cp.snap.Vertices[vs.si.id]
		if m == nil {
			m = make(map[int][]byte)
			cp.snap.Vertices[vs.si.id] = m
		}
		m[vs.vertexIdx] = append([]byte(nil), enc.Bytes()...)
		cp.mu.Unlock()
	}
	return nil
}

// restoreVertices runs on the worker thread: it hands each stateful vertex
// its checkpointed bytes.
func (w *worker) restoreVertices(cp *checkpointState) error {
	for _, vs := range w.vsList {
		cpr, ok := vs.vertex.(Checkpointer)
		if !ok {
			continue
		}
		cp.mu.Lock()
		data, found := cp.snap.Vertices[vs.si.id][vs.vertexIdx]
		cp.mu.Unlock()
		if !found {
			continue
		}
		cpr.Restore(codec.NewDecoder(data))
	}
	return nil
}

// EncodeSnapshot serializes a snapshot for durable storage.
func EncodeSnapshot(s *Snapshot) []byte {
	enc := codec.NewEncoder(1024)
	enc.PutUint32(uint32(len(s.Vertices)))
	for sid, m := range s.Vertices {
		enc.PutUint32(uint32(sid))
		enc.PutUint32(uint32(len(m)))
		for idx, data := range m {
			enc.PutUint32(uint32(idx))
			enc.PutBytes(data)
		}
	}
	enc.PutUint32(uint32(len(s.InputEpochs)))
	for sid, e := range s.InputEpochs {
		enc.PutUint32(uint32(sid))
		enc.PutInt64(e)
	}
	return enc.Bytes()
}

// DecodeSnapshot parses a serialized snapshot.
func DecodeSnapshot(data []byte) *Snapshot {
	dec := codec.NewDecoder(data)
	s := &Snapshot{
		Vertices:    make(map[StageID]map[int][]byte),
		InputEpochs: make(map[StageID]int64),
	}
	for n := int(dec.Uint32()); n > 0; n-- {
		sid := StageID(dec.Uint32())
		m := make(map[int][]byte)
		for k := int(dec.Uint32()); k > 0; k-- {
			idx := int(dec.Uint32())
			m[idx] = append([]byte(nil), dec.BytesView()...)
		}
		s.Vertices[sid] = m
	}
	for n := int(dec.Uint32()); n > 0; n-- {
		sid := StageID(dec.Uint32())
		s.InputEpochs[sid] = dec.Int64()
	}
	return s
}
