package runtime

import (
	"fmt"
	"testing"

	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// counterVertex sums all values it has ever seen and emits the running
// total at the end of each epoch. It checkpoints its running total.
type counterVertex struct {
	ctx   *Context
	total int64
	dirty map[int64]bool
}

func (v *counterVertex) OnRecv(_ int, msg Message, t ts.Timestamp) {
	if v.dirty == nil {
		v.dirty = make(map[int64]bool)
	}
	if !v.dirty[t.Epoch] {
		v.dirty[t.Epoch] = true
		v.ctx.NotifyAt(t)
	}
	v.total += msg.(int64)
}

func (v *counterVertex) OnNotify(t ts.Timestamp) {
	delete(v.dirty, t.Epoch)
	v.ctx.SendBy(0, v.total, t)
}

func (v *counterVertex) Checkpoint(enc *codec.Encoder) { enc.PutInt64(v.total) }
func (v *counterVertex) Restore(dec *codec.Decoder)    { v.total = dec.Int64() }

func buildCounter(t *testing.T) (*Computation, *Input, *sink, *Probe) {
	t.Helper()
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	ctr := c.AddStage("counter", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &counterVertex{ctx: ctx}
	}, Pinned(0))
	c.Connect(in.Stage(), 0, ctr, func(Message) uint64 { return 0 }, codec.Int64())
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(ctr, 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	probe := c.NewProbe(snk)
	return c, in, s, probe
}

func TestCheckpointRestore(t *testing.T) {
	// Run epochs 0 and 1, checkpoint, then feed epoch 2 on the original.
	orig, in, s, probe := buildCounter(t)
	if err := orig.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2))
	in.OnNext(int64(10))
	probe.WaitFor(1)
	snap, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(100))
	in.Close()
	if err := orig.Join(); err != nil {
		t.Fatal(err)
	}
	if got := s.sorted(2); fmt.Sprint(got) != "[113]" {
		t.Fatalf("original epoch 2 = %v", got)
	}

	// The snapshot survives serialization.
	snap = DecodeSnapshot(EncodeSnapshot(snap))
	if snap.InputEpochs[in.Stage()] != 2 {
		t.Fatalf("snapshot epoch = %d", snap.InputEpochs[in.Stage()])
	}

	// Recover into a fresh computation and continue from epoch 2.
	rec, rin, rs, _ := buildCounter(t)
	if err := rec.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if rin.Epoch() != 2 {
		t.Fatalf("restored input epoch = %d", rin.Epoch())
	}
	rin.OnNext(int64(100))
	rin.Close()
	if err := rec.Join(); err != nil {
		t.Fatal(err)
	}
	if got := rs.sorted(2); fmt.Sprint(got) != "[113]" {
		t.Fatalf("recovered epoch 2 = %v: recovery lost state", got)
	}
	// Epochs before the checkpoint never re-execute on the recovered run.
	if got := rs.sorted(0); len(got) != 0 {
		t.Fatalf("recovered epoch 0 re-executed: %v", got)
	}
}

func TestCheckpointBeforeStartFails(t *testing.T) {
	c, err := NewComputation(Config{Processes: 1, WorkersPerProcess: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("expected error")
	}
	if err := c.Restore(&Snapshot{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSnapshotRoundtripEmpty(t *testing.T) {
	s := &Snapshot{Vertices: map[StageID]map[int][]byte{}, InputEpochs: map[StageID]int64{}}
	got := DecodeSnapshot(EncodeSnapshot(s))
	if len(got.Vertices) != 0 || len(got.InputEpochs) != 0 {
		t.Fatal("roundtrip of empty snapshot")
	}
}
