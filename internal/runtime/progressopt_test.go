package runtime

import (
	"strings"
	"sync"
	"testing"

	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// TestProbeWaitForErrDistinguishesFailure pins down the distinction that
// Probe.Done/WaitFor conflate: a probe released because its epoch completed
// (or the computation drained) reports nil, while one released by a failure
// reports the failure.
func TestProbeWaitForErrDistinguishesFailure(t *testing.T) {
	t.Run("failed", func(t *testing.T) {
		cfg := Config{Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
		c, err := NewComputation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := c.NewInput("in")
		bad := mapStage(c, "bad", func(v int64) int64 { panic("kaboom") })
		c.Connect(in.Stage(), 0, bad, hashPart, nil)
		s := newSink()
		snk := sinkStage(c, s, "sink")
		c.Connect(bad, 0, snk, nil, nil)
		probe := c.NewProbe(snk)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		in.OnNext(int64(1))
		// Epoch 5 is never fed: the only way the wait can end is the abort.
		if werr := probe.WaitForErr(5); werr == nil || !strings.Contains(werr.Error(), "kaboom") {
			t.Fatalf("WaitForErr after failure = %v, want the vertex panic", werr)
		}
		if probe.Err() == nil {
			t.Fatal("Err() = nil after failure")
		}
		if !probe.Done(5) {
			t.Fatal("Done must still report true so legacy WaitFor callers unblock")
		}
		if err := c.Join(); err == nil {
			t.Fatal("Join = nil, want the vertex panic")
		}
	})
	t.Run("drained", func(t *testing.T) {
		cfg := Config{Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
		c, err := NewComputation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := c.NewInput("in")
		s := newSink()
		snk := sinkStage(c, s, "sink")
		c.Connect(in.Stage(), 0, snk, nil, nil)
		probe := c.NewProbe(snk)
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		in.OnNext(int64(7))
		if werr := probe.WaitForErr(0); werr != nil {
			t.Fatalf("WaitForErr(0) = %v on a healthy run", werr)
		}
		in.Close()
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
		// Epoch 10 was never fed, but the computation drained: nothing can
		// reach the probe's location anymore, so the wait ends cleanly.
		if werr := probe.WaitForErr(10); werr != nil {
			t.Fatalf("WaitForErr(10) after clean drain = %v, want nil", werr)
		}
		if probe.Err() != nil {
			t.Fatalf("Err() after clean drain = %v", probe.Err())
		}
	})
}

// countingSink records every delivered record along with the vertex index
// that received it.
type countingSink struct {
	mu      sync.Mutex
	got     []int64
	indices map[int]int
}

type countingVertex struct {
	ctx *Context
	s   *countingSink
}

func (v *countingVertex) OnRecv(_ int, msg Message, t ts.Timestamp) {
	v.s.mu.Lock()
	v.s.got = append(v.s.got, msg.(int64))
	v.s.indices[v.ctx.Index()]++
	v.s.mu.Unlock()
}

func (v *countingVertex) OnNotify(ts.Timestamp) {}

// TestPinnedStageCrossWorkerDelivery routes records from every worker of a
// parallel source stage to a stage pinned to the last worker, exercising
// both the same-process mailbox path (mailLocalData, which carries no
// destination-vertex field: the receiving worker hosts exactly one vertex
// of the stage) and the serialized cross-process path. Every record must
// arrive exactly once, all on the pinned vertex (index 0).
func TestPinnedStageCrossWorkerDelivery(t *testing.T) {
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, BatchSize: 2}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	// A parallel pass-through spreads the records over all four workers.
	spread := mapStage(c, "spread", func(v int64) int64 { return v })
	c.Connect(in.Stage(), 0, spread, hashPart, codec.Int64())
	s := &countingSink{indices: make(map[int]int)}
	pinned := c.AddStage("pinned", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &countingVertex{ctx: ctx, s: s}
	}, Pinned(3))
	c.Connect(spread, 0, pinned, nil, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 64
	recs := make([]Message, n)
	for i := range recs {
		recs[i] = int64(i)
	}
	in.OnNext(recs...)
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if len(s.got) != n {
		t.Fatalf("pinned stage received %d records, want %d", len(s.got), n)
	}
	seen := make(map[int64]bool)
	for _, v := range s.got {
		if seen[v] {
			t.Fatalf("record %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(s.indices) != 1 || s.indices[0] != n {
		t.Fatalf("deliveries by vertex index = %v, want all %d on index 0", s.indices, n)
	}
}
