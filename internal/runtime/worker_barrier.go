package runtime

import (
	"fmt"
	"sort"

	"naiad/internal/batchbuf"
	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
	"naiad/internal/trace"
	"naiad/internal/transport"
)

// Worker-side barrier protocol. Markers travel through the same queues as
// data (the local delivery queue, mailboxes, transport links), so each
// vertex observes its channels' markers exactly where the barrier sits in
// the stream. All methods here run on the worker thread.
//
// Alignment is epoch-aligned: a vertex begins aligning at its first marker
// for a cut, keeps processing sub-boundary (epoch < E) work normally, and
// defers epoch-≥E batches (deliverBatch logs them into the cut and stashes
// them). It snapshots only once every channel's marker has arrived and no
// sub-boundary notification remains pending — at that instant its state is
// exactly what a stop-the-world checkpoint at epoch E would have captured.
// Markers go out ahead of any post-snapshot output, then the deferred
// batches are redelivered as ordinary traffic.

// startInputBarriers begins cut `cut` at this worker's source vertices:
// input stages and any stage with no in-graph input channels. Everything
// downstream aligns when the markers reach it.
func (w *worker) startInputBarriers(cut, epoch int64) {
	if cut <= w.cutDone {
		return
	}
	for _, vs := range w.vsList {
		if vs.si.role != graph.RoleInput && len(w.comp.lg.Inputs(vs.si.id)) > 0 {
			continue
		}
		if vs.barrierCut == 0 && vs.lastCut < cut {
			w.beginAlignment(vs, cut, epoch)
			w.tryCompleteBarrier(vs)
		}
	}
}

// beginAlignment is the first-marker action: record the cut and its epoch
// boundary, and compute the alignment set — one marker per (input
// connector, source vertex). No state is captured yet: the vertex keeps
// running, deferring epoch-≥boundary work, until tryCompleteBarrier finds
// the boundary fully drained.
func (w *worker) beginAlignment(vs *vertexState, cut, epoch int64) {
	c := w.comp
	vs.barrierCut = cut
	vs.barrierEpoch = epoch
	if w.tracer != nil {
		vs.barrierT0 = w.tracer.Now()
	}
	workers := c.cfg.Workers()
	vs.barrierWait = make(map[uint64]bool)
	for _, cid := range c.lg.Inputs(vs.si.id) {
		srcPeers := c.stage(c.conn(cid).src).parallelism(workers)
		for s := 0; s < srcPeers; s++ {
			vs.barrierWait[chanKey(cid, s)] = true
		}
	}
}

// tryCompleteBarrier snapshots an aligning vertex if its boundary has fully
// drained: every input channel's marker has arrived, and no pending
// notification below the cut's epoch boundary remains (sub-boundary
// notifications must fire into the fragment — they are state transitions of
// the epochs the cut covers). Called when the alignment set empties and
// after every notification delivered on an aligning vertex; sub-boundary
// work is never blocked anywhere, so the boundary always drains and this
// always eventually fires.
func (w *worker) tryCompleteBarrier(vs *vertexState) {
	if vs.barrierCut == 0 || len(vs.barrierWait) > 0 {
		return
	}
	// pending is sorted by guarantee, epoch-major: one look at the head.
	if len(vs.pending) > 0 && vs.pending[0].guarantee.Epoch < vs.barrierEpoch {
		return
	}
	w.finishBarrier(vs)
}

// finishBarrier takes the vertex's snapshot at the fully drained boundary:
// capture the fragment (state bytes and pending notifications — all
// post-boundary now), open a new delivery-log segment, forward markers
// downstream ahead of any post-snapshot output, report the fragment, and
// release the deferred batches.
func (w *worker) finishBarrier(vs *vertexState) {
	cut := vs.barrierCut
	if cpr, ok := vs.vertex.(Checkpointer); ok {
		enc := codec.NewEncoder(256)
		cpr.Checkpoint(enc)
		vs.barrierFrag = append([]byte(nil), enc.Bytes()...)
	}
	if len(vs.pending) > 0 {
		vs.barrierPending = make([]PendingNotification, len(vs.pending))
		for i, nr := range vs.pending {
			vs.barrierPending[i] = PendingNotification{
				Guarantee: nr.guarantee, Capability: nr.capability, HasCap: nr.hasCap,
			}
		}
	}
	// Capture the held-capability fragment: the sequence counter (replay must
	// continue the exact numbering) and any capabilities still held — e.g. a
	// sink whose commit I/O for a sealed epoch has not reported back yet.
	capFrag := CapFragment{Next: vs.nextCapSeq}
	if len(vs.heldCaps) > 0 {
		capFrag.Held = make([]HeldCapability, 0, len(vs.heldCaps))
		for seq, hc := range vs.heldCaps {
			capFrag.Held = append(capFrag.Held, HeldCapability{Seq: seq, Time: hc.pc.Time()})
		}
		sort.Slice(capFrag.Held, func(i, j int) bool { return capFrag.Held[i].Seq < capFrag.Held[j].Seq })
	}
	if w.dlogs != nil {
		if lg := w.dlogs[vs.si.id]; lg != nil {
			lg.begin(cut)
		}
	}
	// Flush batched output so everything sent before the snapshot precedes
	// the markers on every link, then emit the markers themselves.
	w.flushData()
	w.emitMarkers(vs, cut)
	if tr := w.tracer; tr != nil {
		tr.Emit(trace.Event{
			Kind: trace.EvBarrierAlign, Worker: int32(w.id), Stage: int32(vs.si.id),
			Loc: -1, Epoch: cut, Dur: tr.Now() - vs.barrierT0, N: int64(len(vs.barrierChans)),
		})
	}
	w.comp.reportCutFragment(cut, vs.si.id, vs.vertexIdx, vs.barrierFrag,
		vs.barrierPending, capFrag, vs.barrierChans, vs.si.role == graph.RoleInput, vs.inputEpoch)
	vs.lastCut = cut
	w.clearBarrier(vs)
}

// emitMarkers forwards cut markers on every outgoing channel of vs: one
// marker per (connector, destination vertex), carrying the sender's
// cumulative batch count so the receiver can detect a torn cut. Local
// destinations get a fenced queue entry — the fence forces subsequent
// fast-path sends on the connector behind the queued marker.
func (w *worker) emitMarkers(vs *vertexState, cut int64) {
	c := w.comp
	workers := c.cfg.Workers()
	epochT := ts.Root(vs.barrierEpoch)
	for _, cid := range c.lg.Outputs(vs.si.id) {
		ci := c.conn(cid)
		dstSi := c.stage(ci.dst)
		peers := dstSi.parallelism(workers)
		for dv := 0; dv < peers; dv++ {
			count := w.chanSent[chanKey(cid, dv)]
			dstWorker := dstSi.workerFor(dv)
			switch {
			case dstWorker == w.id:
				w.localFence[cid]++
				w.localQ = append(w.localQ, delivery{
					ci: ci, vs: w.vertices[ci.dst], marker: true, fenced: true,
					cut: cut, src: vs.vertexIdx, count: count, time: epochT,
				})
			case dstWorker/c.cfg.WorkersPerProcess == w.proc:
				c.workers[dstWorker].mailbox.push(mailItem{
					kind: mailBarrier, conn: cid, src: vs.vertexIdx,
					barrier: cut, count: count, time: epochT,
				})
			default:
				payload := EncodeBarrierMarker(BarrierMarker{
					Cut: cut, Epoch: vs.barrierEpoch, Conn: cid,
					Src: vs.vertexIdx, Dst: dv, Count: count,
				})
				c.trans.Send(w.proc, dstWorker/c.cfg.WorkersPerProcess, transport.KindControl, payload)
			}
		}
	}
}

// handleMarker processes one barrier marker popped from the local delivery
// queue. Late markers for retired or aborted cuts are dropped; any other
// protocol violation — a duplicated marker, a count mismatch proving FIFO
// was broken — poisons the cut rather than risking a torn snapshot.
func (w *worker) handleMarker(d delivery) {
	cut := d.cut
	if cut <= w.cutDone {
		return // the cut is already retired or aborted: a late duplicate
	}
	vs := d.vs
	if vs.barrierCut == 0 {
		if cut <= vs.lastCut {
			w.comp.poisonCut(cut, fmt.Errorf(
				"runtime: stage %s vertex %d received a duplicate marker for cut %d after alignment",
				vs.si.name, vs.vertexIdx, cut))
			return
		}
		w.beginAlignment(vs, cut, d.time.Epoch)
	} else if vs.barrierCut != cut {
		if vs.barrierCut <= w.cutDone {
			// The previous cut was aborted; its broadcast raised cutDone but
			// this vertex's state was cleared on another path. Restart.
			w.clearBarrier(vs)
			w.beginAlignment(vs, cut, d.time.Epoch)
		} else {
			w.comp.poisonCut(cut, fmt.Errorf(
				"runtime: stage %s vertex %d saw marker for cut %d while aligning cut %d",
				vs.si.name, vs.vertexIdx, cut, vs.barrierCut))
			return
		}
	}
	key := chanKey(d.ci.id, d.src)
	if !vs.barrierWait[key] {
		w.comp.poisonCut(cut, fmt.Errorf(
			"runtime: stage %s vertex %d received a duplicate marker on channel (conn %d, src %d) for cut %d",
			vs.si.name, vs.vertexIdx, d.ci.id, d.src, cut))
		return
	}
	if got := w.chanRecv[key]; got != d.count {
		w.comp.poisonCut(cut, fmt.Errorf(
			"runtime: torn cut %d at stage %s vertex %d: channel (conn %d, src %d) delivered %d batches, marker says %d — link FIFO violated",
			cut, vs.si.name, vs.vertexIdx, d.ci.id, d.src, got, d.count))
		return
	}
	delete(vs.barrierWait, key)
	if len(vs.barrierWait) == 0 {
		w.tryCompleteBarrier(vs)
	}
}

// clearBarrier discards a vertex's alignment state and releases its
// deferred batches as ordinary traffic, in arrival order. The fields are
// zeroed before redelivery so the batches are not deferred again (and, on
// the abort path, so a fresh alignment can start cleanly afterwards).
// Gated post-boundary notifications become eligible again, so the
// candidate queue is marked dirty.
func (w *worker) clearBarrier(vs *vertexState) {
	stash := vs.barrierDefer
	vs.barrierCut = 0
	vs.barrierWait = nil
	vs.barrierFrag = nil
	vs.barrierPending = nil
	vs.barrierChans = nil
	vs.barrierDefer = nil
	for _, d := range stash {
		w.deliverBatch(d)
	}
	w.notifyDirty = true
}

// abortBarrierCtl handles ctlBarrierAbort: the cut is abandoned, partial
// alignment state is dropped (deferred batches are delivered — they are
// real traffic whether or not the snapshot survives), and the cut's
// delivery-log segments merge back into their predecessors (the snapshot
// boundary no longer exists).
func (w *worker) abortBarrierCtl(cut int64) {
	if cut > w.cutDone {
		w.cutDone = cut
	}
	for _, vs := range w.vsList {
		if vs.barrierCut == cut {
			w.clearBarrier(vs)
		}
	}
	if w.dlogs != nil {
		for _, vs := range w.vsList {
			if lg := w.dlogs[vs.si.id]; lg != nil {
				lg.abortSeg(cut)
			}
		}
	}
}

// retireCutCtl handles ctlCutRetire: cut is complete and persisted, so
// delivery-log segments older than its snapshot boundary are pruned and any
// straggling alignment state at or before it is defensively cleared.
func (w *worker) retireCutCtl(cut int64) {
	if cut > w.cutDone {
		w.cutDone = cut
	}
	for _, vs := range w.vsList {
		if vs.barrierCut != 0 && vs.barrierCut <= cut {
			w.clearBarrier(vs)
		}
	}
	if w.dlogs != nil {
		for _, vs := range w.vsList {
			if lg := w.dlogs[vs.si.id]; lg != nil {
				lg.retire(cut)
			}
		}
	}
}

// noteDelivery observes one delivered (not deferred) batch on a channel: it
// advances the receive counter markers are checked against — unless the
// batch already counted when it was deferred — and appends it to the
// vertex's delivery log for selective replay. The batch is borrowed.
func (w *worker) noteDelivery(ci *connInfo, vs *vertexState, src int, t ts.Timestamp, b *batchbuf.Batch, uncounted bool) {
	if w.chanRecv != nil && !uncounted {
		w.chanRecv[chanKey(ci.id, src)]++
	}
	if w.dlogs != nil {
		if lg := w.dlogs[vs.si.id]; lg != nil {
			lg.add(vlogEntry{kind: vlogRecv, payload: w.encodeFrameOwned(ci, vs.vertexIdx, src, t, b)})
		}
	}
}
