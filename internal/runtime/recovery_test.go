package runtime

import (
	"errors"
	"strings"
	"testing"
	"time"

	"naiad/internal/testutil"
	"naiad/internal/transport"
)

// TestRestoreRejectsUnknownStage: a snapshot referencing a StageID the
// graph does not have must be rejected with a typed error before any
// vertex state is touched.
func TestRestoreRejectsUnknownStage(t *testing.T) {
	c, in, _, _ := buildCounter(t)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		in.Close()
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
	}()
	var use *UnknownStageError
	err := c.Restore(&Snapshot{
		Vertices:    map[StageID]map[int][]byte{99: {0: nil}},
		InputEpochs: map[StageID]int64{},
	})
	if !errors.As(err, &use) || use.Stage != 99 {
		t.Fatalf("Restore = %v, want *UnknownStageError for stage 99", err)
	}
	err = c.Restore(&Snapshot{
		Vertices:    map[StageID]map[int][]byte{},
		InputEpochs: map[StageID]int64{42: 7},
	})
	if !errors.As(err, &use) || use.Stage != 42 {
		t.Fatalf("Restore = %v, want *UnknownStageError for stage 42", err)
	}
}

// TestRestoreStaleEpochSkipsAdvance pins the documented Restore contract:
// input epochs only move forward, so a snapshot whose InputEpochs entry is
// ≤ the input's current epoch leaves the input where it is.
func TestRestoreStaleEpochSkipsAdvance(t *testing.T) {
	c, in, s, probe := buildCounter(t)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2))
	in.OnNext(int64(10))
	in.OnNext(int64(100))
	probe.WaitFor(2)
	if in.Epoch() != 3 {
		t.Fatalf("input epoch = %d, want 3", in.Epoch())
	}
	// A stale snapshot position (epoch 1 < current 3) must not rewind.
	err := c.Restore(&Snapshot{
		Vertices:    map[StageID]map[int][]byte{},
		InputEpochs: map[StageID]int64{in.Stage(): 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Epoch() != 3 {
		t.Fatalf("stale restore moved the input to epoch %d", in.Epoch())
	}
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if got := s.sorted(2); len(got) != 1 || got[0] != 113 {
		t.Fatalf("epoch 2 output = %v, want [113]", got)
	}
}

// TestSnapshotFramingRejectsCorruption: the versioned, checksummed header
// must reject truncation, foreign bytes, version skew, and bit rot — and
// accept its own output.
func TestSnapshotFramingRejectsCorruption(t *testing.T) {
	snap := &Snapshot{
		Vertices:    map[StageID]map[int][]byte{1: {0: []byte("state")}},
		InputEpochs: map[StageID]int64{0: 7},
	}
	data := EncodeSnapshot(snap)
	good, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(good.Vertices[1][0]) != "state" || good.InputEpochs[0] != 7 {
		t.Fatalf("roundtrip mangled the snapshot: %+v", good)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": data[:snapshotHeaderSize-1],
		"bad magic": append([]byte{0, 0, 0, 0}, data[4:]...),
	}
	headless := append([]byte(nil), data...)
	headless[4] = 99 // future version
	cases["version skew"] = headless
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x40 // bit rot in the body
	cases["bit rot"] = flipped
	for name, bad := range cases {
		if _, err := UnmarshalSnapshot(bad); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DecodeSnapshot did not panic on corrupt input")
		}
	}()
	DecodeSnapshot(flipped)
}

// TestHeartbeatSuspicionAbortsComputation wires Config.Heartbeat through a
// chaos transport hidden behind an opaque wrapper (so the runtime's
// *transport.Chaos crash callback cannot fire and only the heartbeat
// detector can notice): crashing a process must abort the computation with
// a heartbeat suspicion from Join instead of hanging.
func TestHeartbeatSuspicionAbortsComputation(t *testing.T) {
	ct := transport.NewChaos(transport.NewMem(3), transport.ChaosConfig{Seed: testutil.Seed(t)})
	cfg := Config{Processes: 3, WorkersPerProcess: 1, Accumulation: AccLocalGlobal,
		Transport: opaque{ct}, Heartbeat: 2 * time.Millisecond, HeartbeatTimeout: 30 * time.Millisecond}
	rm := &RecoveryMetrics{}
	c, in, _, _ := buildCounterCfg(t, cfg)
	c.SetRecoveryMetrics(rm)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.OnNext(int64(1), int64(2))
	ct.Crash(2)
	in.Close() // dropped by closed mailboxes after the abort; must not panic

	errCh := make(chan error, 1)
	go func() { errCh <- c.Join() }()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "heartbeat") {
			t.Fatalf("Join = %v, want a heartbeat suspicion", err)
		}
		if !c.Failed() || c.Err() == nil {
			t.Fatal("Failed()/Err() do not reflect the abort")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Join hung; heartbeat detector never fired")
	}
	if rm.HeartbeatMisses.Load() == 0 {
		t.Fatal("heartbeat misses not recorded in recovery metrics")
	}
	if got := c.Metrics().Recovery.HeartbeatMisses; got == 0 {
		t.Fatal("metrics snapshot missing heartbeat misses")
	}
}

// opaque hides a transport's concrete type from the runtime's type
// asserts, so tests can isolate one failure-detection path.
type opaque struct{ transport.Transport }

// TestRecoveryMetricsSurface: counters attached via SetRecoveryMetrics
// must flow into MetricsSnapshot and its rendered table.
func TestRecoveryMetricsSurface(t *testing.T) {
	rm := &RecoveryMetrics{}
	rm.Checkpoints.Store(3)
	rm.CheckpointBytes.Store(4096)
	rm.Restarts.Store(2)
	rm.LastRecoveryNanos.Store(int64(250 * time.Millisecond))
	rm.HeartbeatMisses.Store(9)
	c, in, _, _ := buildCounter(t)
	c.SetRecoveryMetrics(rm)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	feedCounter(in)
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	got := c.Metrics().Recovery
	want := RecoverySnapshot{Checkpoints: 3, CheckpointBytes: 4096, Restarts: 2,
		LastRecovery: 250 * time.Millisecond, HeartbeatMisses: 9}
	if got != want {
		t.Fatalf("recovery snapshot = %+v, want %+v", got, want)
	}
	if s := c.Metrics().String(); !strings.Contains(s, "recovery: 3 checkpoints") {
		t.Fatalf("metrics table missing recovery line:\n%s", s)
	}
}
