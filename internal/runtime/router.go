package runtime

import (
	"fmt"
	"sync"

	"naiad/internal/batchbuf"
	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/progress"
	ts "naiad/internal/timestamp"
	"naiad/internal/transport"
)

type update = progress.Update

// progress frame subtypes (first payload byte).
const (
	progBroadcast byte = iota // apply at every worker of the receiving process
	progToGlobal              // enqueue into the cluster-level accumulator
)

// accumulator merges queued update batches and emits their net effect,
// positives first (§3.3). Batches from one source are merged in arrival
// order, so the per-link FIFO discipline the protocol's safety proof needs
// is preserved: merging only delays updates, never reorders a negative
// ahead of the positives that causally precede it.
type accumulator struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]update
	closed bool
	done   chan struct{}
}

func newAccumulator(emit func([]update)) *accumulator {
	a := &accumulator{done: make(chan struct{})}
	a.cond = sync.NewCond(&a.mu)
	go a.run(emit)
	return a
}

func (a *accumulator) enqueue(us []update) {
	if len(us) == 0 {
		return
	}
	a.mu.Lock()
	if !a.closed {
		a.queue = append(a.queue, us)
	}
	a.mu.Unlock()
	a.cond.Signal()
}

func (a *accumulator) run(emit func([]update)) {
	defer close(a.done)
	buf := progress.NewBuffer()
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.closed {
			a.cond.Wait()
		}
		batches := a.queue
		a.queue = nil
		closed := a.closed
		a.mu.Unlock()
		for _, b := range batches {
			buf.AddAll(b)
		}
		if out := buf.Drain(); len(out) > 0 {
			emit(out)
		}
		if closed && len(batches) == 0 {
			return
		}
	}
}

func (a *accumulator) close() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	a.cond.Broadcast()
	<-a.done
}

// encodeProgress serializes a progress frame: subtype, count, then each
// update as (location, epoch, depth, counters, delta).
func encodeProgress(subtype byte, us []update) []byte {
	e := codec.NewEncoder(5 + len(us)*24)
	e.PutUint8(subtype)
	e.PutUint32(uint32(len(us)))
	for _, u := range us {
		e.PutUint32(uint32(u.P.Loc))
		e.PutInt64(u.P.Time.Epoch)
		e.PutUint8(u.P.Time.Depth)
		for i := uint8(0); i < u.P.Time.Depth; i++ {
			e.PutInt64(u.P.Time.Counters[i])
		}
		e.PutInt64(u.D)
	}
	return e.Bytes()
}

// decodeProgress parses a progress frame, returning its subtype.
func decodeProgress(payload []byte) (byte, []update) {
	d := codec.NewDecoder(payload)
	subtype := d.Uint8()
	n := int(d.Uint32())
	// Sanity-check the count against the bytes actually present (≥21 per
	// update) before allocating, so a corrupt frame cannot demand gigabytes.
	if n > (len(payload)-5)/21+1 {
		panic(fmt.Sprintf("runtime: corrupt progress frame: %d updates claimed in %d bytes", n, len(payload)))
	}
	us := make([]update, n)
	for i := range us {
		us[i].P.Loc = graph.Location(d.Uint32())
		us[i].P.Time = decodeTime(d)
		us[i].D = d.Int64()
	}
	return subtype, us
}

// broadcastProgress delivers an update batch to every worker in the
// cluster: local workers via their mailboxes, remote processes via one
// serialized frame each.
func (c *Computation) broadcastProgress(fromProc int, us []update) {
	if len(us) == 0 {
		return
	}
	var payload []byte
	if c.cfg.Processes > 1 {
		payload = encodeProgress(progBroadcast, us)
	}
	for p := 0; p < c.cfg.Processes; p++ {
		if p == fromProc {
			c.deliverProgressLocal(p, us)
		} else {
			c.trans.Send(fromProc, p, transport.KindProgress, payload)
		}
	}
}

// deliverProgressLocal fans a batch out to every worker of a process. The
// slice is shared read-only between the workers.
func (c *Computation) deliverProgressLocal(proc int, us []update) {
	for _, w := range c.procs[proc].workers {
		w.mailbox.push(mailItem{kind: mailProgress, updates: us})
	}
}

// sendToGlobalAcc routes a batch to the cluster-level accumulator, which
// lives in process 0.
func (c *Computation) sendToGlobalAcc(fromProc int, us []update) {
	if len(us) == 0 {
		return
	}
	if fromProc == 0 {
		c.globAcc.enqueue(us)
		return
	}
	c.trans.Send(fromProc, 0, transport.KindProgress, encodeProgress(progToGlobal, us))
}

// routeWorkerFlush dispatches one worker's drained updates according to the
// configured accumulation mode (§3.3, Figure 6c).
func (c *Computation) routeWorkerFlush(fromProc int, us []update) {
	switch c.cfg.Accumulation {
	case AccNone:
		// Broadcast every update individually, uncombined.
		for i := range us {
			c.broadcastProgress(fromProc, us[i:i+1])
		}
	case AccLocal, AccLocalGlobal:
		c.accs[fromProc].enqueue(us)
	case AccGlobal:
		c.sendToGlobalAcc(fromProc, us)
	}
}

// process is one transport domain hosting a group of workers.
type process struct {
	comp    *Computation
	id      int
	workers []*worker
}

// onFrame dispatches a received transport frame. It runs on the transport's
// delivery goroutine; per-link FIFO order is preserved by doing all
// dispatching inline. A corrupt frame (truncated payload, absurd counts)
// makes the decoder panic; that aborts the computation with an error from
// Join rather than killing the process.
func (p *process) onFrame(from int, kind transport.Kind, payload []byte) {
	defer func() {
		if r := recover(); r != nil {
			p.comp.fail(fmt.Errorf("runtime: process %d: corrupt frame from process %d: %v", p.id, from, r))
		}
	}()
	switch kind {
	case transport.KindData:
		conn, dstVertex := peekDataHeader(payload)
		ci := p.comp.conn(conn)
		wid := p.comp.stage(ci.dst).workerFor(dstVertex)
		p.comp.workers[wid].mailbox.push(mailItem{kind: mailRawData, payload: payload})
	case transport.KindProgress:
		subtype, us := decodeProgress(payload)
		// decodeProgress copies everything out of the frame, so the buffer
		// goes straight back to the receive arena. (Data frames are recycled
		// by the worker after decoding; control frames are not recycled at
		// all — the chaos transport can deliver a duplicated marker frame
		// sharing one buffer, which must not be double-pooled.)
		batchbuf.PutBytes(payload)
		switch subtype {
		case progToGlobal:
			p.comp.globAcc.enqueue(us)
		default:
			p.comp.deliverProgressLocal(p.id, us)
		}
	case transport.KindControl:
		// Barrier markers are the only control frames: decode, validate, and
		// route to the worker hosting the destination vertex. The transport's
		// cross-kind per-link FIFO keeps the marker behind the data frames
		// sent before it.
		m, err := DecodeBarrierMarker(payload)
		if err != nil {
			panic(err) // recovered above: aborts with a clean error
		}
		if int(m.Conn) < 0 || int(m.Conn) >= len(p.comp.conns) {
			panic(fmt.Sprintf("runtime: barrier marker references unknown connector %d", m.Conn))
		}
		ci := p.comp.conn(m.Conn)
		dstSi := p.comp.stage(ci.dst)
		if m.Dst < 0 || m.Dst >= dstSi.parallelism(p.comp.cfg.Workers()) {
			panic(fmt.Sprintf("runtime: barrier marker references vertex %d of stage %s", m.Dst, dstSi.name))
		}
		wid := dstSi.workerFor(m.Dst)
		p.comp.workers[wid].mailbox.push(mailItem{
			kind: mailBarrier, conn: m.Conn, src: m.Src, time: ts.Root(m.Epoch),
			barrier: m.Cut, count: m.Count,
		})
	}
}
