package runtime

import (
	"naiad/internal/graph"
	"naiad/internal/trace"
	"naiad/internal/transport"
)

// This file is the runtime side of the observability subsystem (package
// trace): the frontier-movement hook and the transport observation wiring.
// The per-callback and scheduler hooks live inline in worker.go; everything
// here shares the same discipline — nil tracer means one predictable branch,
// an enabled tracer never blocks the dataflow.

// emitFrontierMoves diffs worker 0's per-location frontier minima against
// the last emission and emits one EvFrontier per movement. The tracker's
// generation counter makes the no-movement case (the common one — a worker
// quantum rarely moves the frontier) a single integer compare. Worker 0's
// local view is conservative, like every worker's; the event stream reports
// when this view learned of the movement, which is what frontier-lag
// diagnosis needs.
func (w *worker) emitFrontierMoves() {
	gen := w.tracker.Gen()
	if gen == w.traceGen {
		return
	}
	w.traceGen = gen
	// Frontier() is time-major sorted, so the first pointstamp seen per
	// location is that location's minimum.
	next := make(map[graph.Location]int64, len(w.traceFrontier))
	for _, p := range w.tracker.Frontier() {
		if _, ok := next[p.Loc]; !ok {
			next[p.Loc] = p.Time.Epoch
		}
	}
	for loc, epoch := range next {
		if prev, ok := w.traceFrontier[loc]; !ok || prev != epoch {
			w.tracer.Emit(trace.Event{
				Kind: trace.EvFrontier, Worker: int32(w.id), Stage: -1,
				Loc: int32(loc), Epoch: epoch,
			})
		}
	}
	for loc, epoch := range w.traceFrontier {
		if _, ok := next[loc]; !ok {
			w.tracer.Emit(trace.Event{
				Kind: trace.EvFrontier, Aux: 1, Worker: int32(w.id), Stage: -1,
				Loc: int32(loc), Epoch: epoch,
			})
		}
	}
	w.traceFrontier = next
}

// observeTransport wraps the computation's (fully constructed) transport so
// every frame the runtime sends or dispatches lands in the event log. Beats
// a Heartbeats wrapper consumes internally never reach the runtime and are
// not observed.
func observeTransport(t transport.Transport, tr *trace.Tracer) transport.Transport {
	return transport.NewObserved(t,
		func(from, to int, kind transport.Kind, n int) {
			tr.Emit(trace.Event{
				Kind: trace.EvFrameSend, Aux: int32(kind), Worker: -1,
				Stage: -1, Loc: int32(to), Epoch: -1, N: int64(n),
			})
		},
		func(from, to int, kind transport.Kind, n int) {
			tr.Emit(trace.Event{
				Kind: trace.EvFrameRecv, Aux: int32(kind), Worker: -1,
				Stage: -1, Loc: int32(from), Epoch: -1, N: int64(n),
			})
		})
}

// attachTracer binds the tracer to this computation's shape. Called from
// Start before any worker goroutine launches, which gives the lock-free
// rings their happens-before edge.
func (c *Computation) attachTracer(tr *trace.Tracer) error {
	metas := make([]trace.StageMeta, len(c.stages))
	for i, si := range c.stages {
		metas[i] = trace.StageMeta{ID: int32(si.id), Name: si.name}
	}
	return tr.Attach(c.cfg.Workers(), metas)
}
