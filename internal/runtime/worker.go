package runtime

import (
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"naiad/internal/batchbuf"
	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/progress"
	ts "naiad/internal/timestamp"
	"naiad/internal/trace"
	"naiad/internal/transport"
)

// notifyReq is a pending notification request (§2.2, generalized per §2.4
// with separate guarantee and capability times). cap is the timestamp token
// the request holds in the worker's capability book (nil for purge
// notifications): minted when the request is filed, dropped when the
// notification delivers.
type notifyReq struct {
	guarantee  ts.Timestamp
	capability ts.Timestamp
	hasCap     bool
	cap        *progress.Capability
}

// frame is one entry of a vertex's callback-time stack: the timestamp the
// current callback runs at, and whether sending is permitted (false inside
// purge notifications, which hold no capability).
type timeFrame struct {
	t       ts.Timestamp
	canSend bool
}

// vertexState is a worker's record of one vertex it hosts.
type vertexState struct {
	si        *stageInfo
	ctx       *Context
	vertex    Vertex
	bv        BatchVertex // non-nil when vertex implements the batch fast path
	vertexIdx int
	timeStack []timeFrame
	pending   []notifyReq // sorted by guarantee (Compare order)

	// input-stage bookkeeping. inputCap is the vertex's seed token: minted
	// seeded at Root(0) (the occurrence is installed directly by seedInputs),
	// downgraded on every epoch advance, dropped at close — the input's
	// frontier contribution is exactly this token's trajectory.
	inputEpoch  int64
	inputClosed bool
	inputCap    *progress.Capability

	// Held-capability bookkeeping (Context.HoldCapability). heldCaps maps the
	// per-vertex sequence number to the live token; nextCapSeq numbers the
	// next hold. Replayed callbacks re-execute in log order, so sequence
	// assignment is deterministic across crash and revival.
	heldCaps   map[uint64]*Capability
	nextCapSeq uint64

	// Barrier alignment state (asynchronous snapshots). barrierCut is the
	// cut this vertex is currently aligning (0 = none) and barrierEpoch its
	// epoch boundary E; lastCut the last cut it finished. barrierWait holds
	// the channels (chanKey) whose marker is still outstanding. While
	// aligning, the vertex processes epoch-<E work normally; epoch-≥E
	// batches are logged into barrierChans (the cut's in-flight channel
	// state) and held in barrierDefer, in arrival order, until the snapshot
	// completes. barrierFrag/barrierPending capture the fragment at the
	// snapshot instant — after every marker has arrived and every sub-
	// boundary notification has fired, so the fragment sits exactly on the
	// epoch boundary.
	barrierCut     int64
	lastCut        int64
	barrierWait    map[uint64]bool
	barrierFrag    []byte
	barrierPending []PendingNotification
	barrierChans   [][]byte
	barrierDefer   []delivery
	barrierEpoch   int64
	barrierT0      int64
}

// outKey identifies one pending outgoing batch.
type outKey struct {
	conn      graph.ConnectorID
	dstWorker int
	time      ts.Timestamp
}

// delivery is a queued batch of messages awaiting local delivery, or — when
// marker is set — a barrier marker travelling through the same queue so it
// stays FIFO with the data batches around it. The queue owns one reference
// to batch; deliverBatch releases it.
type delivery struct {
	ci    *connInfo
	vs    *vertexState
	time  ts.Timestamp
	batch *batchbuf.Batch
	src   int // sending vertex index (channel endpoint)

	// marker deliveries (cut/count per BarrierMarker; time carries the
	// cut's epoch boundary as ts.Root(epoch)). fenced markers hold a
	// localFence reference forcing later same-connector sends to queue
	// behind them instead of taking the synchronous fast path.
	marker bool
	fenced bool
	cut    int64
	count  int64

	// uncounted batches already advanced the receive-side channel counter:
	// deferred batches count at deferral, so their redelivery after the
	// snapshot must not count again.
	uncounted bool
}

// notifyCand is one entry of the deliverable-candidate queue: a vertex
// whose pending list held a request at this guarantee time with no active
// precursor when the queue was last built. Candidates are revalidated
// against the live tracker before delivery, so a stale entry is dropped,
// never delivered unsafely.
type notifyCand struct {
	vs        *vertexState
	guarantee ts.Timestamp
}

// worker is one scheduler thread (§3.2): it owns a partition of the
// vertices, delivers their messages and notifications single-threadedly,
// and participates in the progress protocol through its local tracker.
type worker struct {
	comp    *Computation
	id      int
	proc    int
	mailbox *mailbox

	vertices []*vertexState // indexed by stage id; nil when not hosted
	vsList   []*vertexState // hosted vertices, in stage order

	tracker     *progress.Tracker
	caps        *progress.CapSet // this worker's book of live timestamp tokens
	pbuf        *progress.Buffer
	raw         []update // AccNone: chronological, uncombined
	pend        update   // current run of adjacent updates to one pointstamp
	havePend    bool
	outBatch    map[outKey]*batchbuf.Batch // pending outgoing batch builders
	localQ      []delivery
	localQHead  int
	notifyCount int
	notifyCands []notifyCand // deliverable candidates, guarantee order
	notifyDirty bool         // candidate queue invalidated by a tracker change
	spare       []mailItem

	// Pooled encode/scatter scratch. frameEnc backs encodeFrame: the worker
	// is single-threaded, so one reusable encoder serves every frame it
	// produces (the old per-frame codec.NewEncoder with its undersized
	// capacity guess was a steady allocation-and-grow tax on the hot path).
	// scratchBox is the boxing spill for codecs without a typed column path;
	// hashes is routeBatch's hash buffer (fully consumed before any delivery
	// can recurse, so one buffer suffices). scatter is a STACK of
	// per-destination builder tables indexed by scatterDepth: routeBatch's
	// dispatch loop delivers synchronously and can re-enter routeBatch
	// (feedback cycles, reentrant vertices), so each nesting level needs its
	// own table — sharing one corrupts the outer call's pending builders.
	frameEnc     *codec.Encoder
	scratchBox   []Message
	scatter      [][]*batchbuf.Batch
	scatterDepth int
	hashes       []uint64

	// Barrier-snapshot state (nil/zero unless a cut handler is installed).
	// chanSent counts batches sent per (connector, dst vertex); chanRecv
	// counts batches delivered per (connector, src vertex) — markers carry
	// the former and are checked against the latter. localFence counts
	// markers queued locally per connector, forcing later sends behind them.
	// cutDone is the highest retired-or-aborted cut id.
	chanSent   map[uint64]int64
	chanRecv   map[uint64]int64
	localFence map[graph.ConnectorID]int
	cutDone    int64

	// Selective-rollback state (nil unless a worker-crash handler is
	// installed). dlogs holds one delivery log per hosted stage; all of it —
	// like the channel counters — survives a simulated crash: the crash
	// destroys vertex state, not the channels. replaying suppresses sends
	// and occurrence posts during log replay.
	dlogs       []*vlog
	crashed     bool
	replaying   bool
	reviveCh    chan reviveReq
	restoredCut *CutSnapshot // full-restore baseline for snap-less revival

	// Tracing state. tracer is nil when tracing is off — every hook is a
	// single predictable branch in that case. The frontier-diff fields are
	// only touched by worker 0 (one conservative local view is enough for
	// the frontier-movement event stream).
	tracer        *trace.Tracer
	traceGen      uint64
	traceFrontier map[graph.Location]int64
}

func newWorker(c *Computation, id, proc int) *worker {
	return &worker{
		comp:        c,
		id:          id,
		proc:        proc,
		mailbox:     newMailbox(&c.activity),
		pbuf:        progress.NewBuffer(),
		outBatch:    make(map[outKey]*batchbuf.Batch),
		notifyDirty: true,
		tracer:      c.cfg.Tracer,
		reviveCh:    make(chan reviveReq),
		frameEnc:    codec.NewEncoder(1024),
	}
}

// run is the worker main loop.
func (w *worker) run() {
	defer w.comp.workerWG.Done()
	defer func() {
		if r := recover(); r != nil {
			w.comp.fail(fmt.Errorf("runtime: worker %d: %v\n%s", w.id, r, debug.Stack()))
		}
	}()
	w.initVertices()
	w.seedInputs()
	idle := false
	for {
		items, ok := w.mailbox.drain(idle, w.spare)
		if !ok {
			return // aborted
		}
		var quantum0 int64
		traceQ := w.tracer != nil && len(items) > 0
		if traceQ {
			quantum0 = w.tracer.Now()
		}
		for i := range items {
			w.handleItem(&items[i])
			if w.crashed && i+1 < len(items) {
				// The quantum ends here: hand the unprocessed suffix back so
				// no delivery is lost across the park/revive cycle.
				w.mailbox.requeue(items[i+1:])
				break
			}
		}
		w.spare = items
		w.deliverAll()
		w.flushData()
		w.flushProgress()
		if w.crashed {
			// Park at a clean quantum boundary: the local queue has drained
			// and output is flushed, so the delivery log matches exactly the
			// prefix the mailbox's remaining contents continue from.
			if !w.park() {
				return
			}
			idle = false
			continue
		}
		if traceQ {
			w.tracer.Emit(trace.Event{
				Kind: trace.EvSchedule, Worker: int32(w.id), Stage: -1, Loc: -1,
				Epoch: -1, Dur: w.tracer.Now() - quantum0, N: int64(len(items)),
			})
		}
		if w.id == 0 {
			if w.tracer != nil {
				w.emitFrontierMoves()
			}
			w.checkProbes()
		}
		if w.tracker.Empty() && w.notifyCount == 0 && !w.haveLocalQ() && w.mailbox.empty() {
			// The local view has drained; the protocol's safety property
			// (a local frontier never passes the global frontier) makes
			// this a sound global termination test.
			if m := w.comp.monitor; m != nil {
				if err := m.CheckDrained(w.id); err != nil {
					panic(err)
				}
			}
			break
		}
		idle = !w.haveLocalQ()
	}
	w.shutdownVertices()
}

// initVertices builds this worker's vertices and the per-worker machinery
// that outlives them (tracker, channel counters, delivery logs).
func (w *worker) initVertices() {
	c := w.comp
	w.buildVertices()
	w.tracker = progress.NewTracker(c.lg)
	// Every occurrence delta a token generates flows through postUpdate, so
	// capability accounting rides the ordinary broadcast path (and is
	// suppressed during replay like any other post).
	w.caps = progress.NewCapSet(fmt.Sprintf("worker %d", w.id), c.lg,
		func(p progress.Pointstamp, d int64) { w.postUpdate(p, d) })
	if c.onCut != nil {
		w.chanSent = make(map[uint64]int64)
		w.chanRecv = make(map[uint64]int64)
		w.localFence = make(map[graph.ConnectorID]int)
	}
	if c.onWorkerCrash != nil {
		w.dlogs = make([]*vlog, len(c.stages))
		for _, vs := range w.vsList {
			w.dlogs[vs.si.id] = newVlog()
		}
	}
}

// buildVertices instantiates this worker's partition of every stage. It is
// called at startup and again on revival after a simulated crash — vertex
// state is rebuilt from scratch, everything else on the worker survives.
func (w *worker) buildVertices() {
	c := w.comp
	w.vertices = make([]*vertexState, len(c.stages))
	w.vsList = w.vsList[:0]
	for _, si := range c.stages {
		var idx int
		switch {
		case si.pinned >= 0:
			if si.pinned != w.id {
				continue
			}
			idx = 0
		default:
			idx = w.id
		}
		vs := &vertexState{si: si, vertexIdx: idx}
		vs.ctx = &Context{w: w, vs: vs, index: idx, peers: si.parallelism(c.cfg.Workers())}
		if si.factory != nil {
			vs.vertex = si.factory(vs.ctx)
		} else if si.role == graph.RoleNormal {
			panic(fmt.Sprintf("runtime: stage %s has no vertex factory", si.name))
		} else {
			// System stages (ingress, egress, feedback) forward messages;
			// the timestamp action happens in sendBy. Input stages never
			// receive messages.
			if si.role != graph.RoleInput {
				vs.vertex = &forwardVertex{ctx: vs.ctx}
			}
		}
		vs.bv, _ = vs.vertex.(BatchVertex)
		w.vertices[si.id] = vs
		w.vsList = append(w.vsList, vs)
	}
}

// seedInputs installs the initial input pointstamps (§2.3) directly into
// the local tracker. Every worker seeds identically — one occurrence per
// physical input vertex — so local views are conservative from the first
// instant without any broadcast. The worker's own hosted input vertices get
// a seeded token standing for their occurrence: minted without posting (the
// seed is already in every tracker), but downgraded and dropped through the
// ordinary broadcast path as epochs advance and close.
func (w *worker) seedInputs() {
	for _, si := range w.comp.stages {
		if si.role != graph.RoleInput {
			continue
		}
		n := int64(si.parallelism(w.comp.cfg.Workers()))
		w.tracker.Update(progress.Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(si.id)}, n)
		if vs := w.vertices[si.id]; vs != nil {
			vs.inputCap = w.caps.MintSeeded(progress.Pointstamp{Time: ts.Root(0), Loc: graph.StageLoc(si.id)})
		}
	}
}

func (w *worker) haveLocalQ() bool { return w.localQHead < len(w.localQ) }

// handleItem processes one mailbox item.
func (w *worker) handleItem(it *mailItem) {
	switch it.kind {
	case mailLocalData:
		ci := w.comp.conn(it.conn)
		w.enqueueLocal(ci, it.src, it.time, it.batch)
	case mailRawData:
		ci, _, src, t, b := decodeDataBatch(w.comp, it.payload)
		// The decoded batch is self-contained (Codec contract), so the frame
		// buffer goes back to the receive arena immediately.
		batchbuf.PutBytes(it.payload)
		w.enqueueLocal(ci, src, t, b)
	case mailBarrier:
		// Markers join the local queue so they stay FIFO with data batches
		// already queued for the same vertex.
		ci := w.comp.conn(it.conn)
		vs := w.vertices[ci.dst]
		if vs == nil {
			panic(fmt.Sprintf("runtime: worker %d received marker for unhosted stage %s",
				w.id, w.comp.stage(ci.dst).name))
		}
		w.localQ = append(w.localQ, delivery{
			ci: ci, vs: vs, marker: true, cut: it.barrier, src: it.src,
			count: it.count, time: it.time,
		})
	case mailProgress:
		w.tracker.Apply(it.updates)
		w.notifyDirty = true // frontier may have moved; candidates are stale
		if w.tracer != nil {
			w.tracer.Emit(trace.Event{
				Kind: trace.EvProgressApply, Worker: int32(w.id), Stage: -1,
				Loc: -1, Epoch: -1, N: int64(len(it.updates)),
			})
		}
		if w.comp.cfg.CheckInvariants {
			w.tracker.CheckInvariants()
		}
		if m := w.comp.monitor; m != nil {
			if err := m.CheckFrontier(w.id, w.tracker.Frontier()); err != nil {
				panic(err)
			}
		}
	case mailControl:
		w.handleControl(it.ctl)
	}
}

func (w *worker) enqueueLocal(ci *connInfo, src int, t ts.Timestamp, b *batchbuf.Batch) {
	vs := w.vertices[ci.dst]
	if vs == nil {
		panic(fmt.Sprintf("runtime: worker %d received batch for unhosted stage %s",
			w.id, w.comp.stage(ci.dst).name))
	}
	w.localQ = append(w.localQ, delivery{ci: ci, vs: vs, src: src, time: t, batch: b})
}

func (w *worker) handleControl(ctl *controlMsg) {
	switch ctl.op {
	case ctlInputFeed:
		vs := w.vertices[ctl.stage]
		if vs.inputClosed {
			panic(fmt.Sprintf("runtime: input %s fed after close", vs.si.name))
		}
		if ctl.epoch != vs.inputEpoch {
			panic(fmt.Sprintf("runtime: input %s fed at epoch %d, current %d",
				vs.si.name, ctl.epoch, vs.inputEpoch))
		}
		t := ts.Root(ctl.epoch)
		for _, rec := range ctl.records {
			w.sendBy(vs, 0, rec, t)
		}
		if ctl.batch != nil {
			w.sendBatchBy(vs, 0, ctl.batch, t)
		}
	case ctlInputAdvance:
		vs := w.vertices[ctl.stage]
		// Each downgrade posts +1 at the new epoch before -1 at the old one —
		// the same positives-first pair the pre-capability code posted, now
		// derived from the seed token's movement.
		for e := vs.inputEpoch; e < ctl.epoch; e++ {
			vs.inputCap.Downgrade(ts.Root(e + 1))
		}
		vs.inputEpoch = ctl.epoch
		if w.dlogs != nil {
			if lg := w.dlogs[ctl.stage]; lg != nil {
				lg.add(vlogEntry{kind: vlogAdvance, epoch: ctl.epoch})
			}
		}
	case ctlInputClose:
		vs := w.vertices[ctl.stage]
		if !vs.inputClosed {
			vs.inputClosed = true
			vs.inputCap.Drop()
			if w.dlogs != nil {
				if lg := w.dlogs[ctl.stage]; lg != nil {
					lg.add(vlogEntry{kind: vlogClose})
				}
			}
		}
	case ctlCheckpoint:
		ctl.ack <- w.checkpointVertices(ctl.cp)
	case ctlRestore:
		ctl.ack <- w.restoreVertices(ctl.cp)
	case ctlBarrier:
		w.startInputBarriers(ctl.cut, ctl.epoch)
	case ctlBarrierAbort:
		w.abortBarrierCtl(ctl.cut)
	case ctlCutRetire:
		w.retireCutCtl(ctl.cut)
	case ctlCrash:
		w.crashed = true
	case ctlCapDrop:
		w.dropHeldCap(ctl.stage, ctl.hseq)
	}
}

// deliverAll drains local work: queued messages first, then deliverable
// notifications, repeating until quiescent (§3.2's messages-before-
// notifications policy; Config.NotificationsFirst inverts it for
// ablation).
func (w *worker) deliverAll() {
	for {
		progressed := false
		if w.comp.cfg.NotificationsFirst {
			for w.deliverOneNotify() {
				progressed = true
			}
		}
		for w.haveLocalQ() {
			d := w.localQ[w.localQHead]
			w.localQ[w.localQHead] = delivery{}
			w.localQHead++
			if d.marker {
				if d.fenced {
					w.localFence[d.ci.id]--
				}
				w.handleMarker(d)
			} else {
				w.deliverBatch(d)
			}
			progressed = true
		}
		if w.localQHead == len(w.localQ) {
			w.localQ = w.localQ[:0]
			w.localQHead = 0
		}
		if w.deliverOneNotify() {
			progressed = true
			continue
		}
		if !progressed {
			return
		}
	}
}

// deliverBatch invokes OnRecv for each record of a queued batch and then
// retires the batch's occurrence counts with a single update. Posting the
// retirement after all the callbacks keeps every +1 they produced
// chronologically ahead of the parent batch's -count, so the protocol's
// causal-chronology discipline is preserved while a 10k-record batch costs
// one occurrence update instead of 10k.
func (w *worker) deliverBatch(d delivery) {
	n := d.batch.Len()
	if n == 0 {
		d.batch.Release()
		return
	}
	vs := d.vs
	if vs.barrierCut != 0 && d.time.Epoch >= vs.barrierEpoch {
		// The batch is on the far side of the cut's epoch boundary: log it
		// into the cut as in-flight channel state and hold it, unprocessed,
		// until the snapshot completes. The channel counter advances now —
		// the batch has arrived; only its processing is deferred — and the
		// uncounted flag keeps redelivery from counting it twice. The queue's
		// reference rides along in barrierDefer until redelivery.
		if w.chanRecv != nil && !d.uncounted {
			w.chanRecv[chanKey(d.ci.id, d.src)]++
		}
		vs.barrierChans = append(vs.barrierChans,
			w.encodeFrameOwned(d.ci, vs.vertexIdx, d.src, d.time, d.batch))
		d.uncounted = true
		vs.barrierDefer = append(vs.barrierDefer, d)
		return
	}
	if vs.si.logged {
		w.comp.logBatch(vs.si.id, w.encodeFrameOwned(d.ci, vs.vertexIdx, d.src, d.time, d.batch))
	}
	w.noteDelivery(d.ci, vs, d.src, d.time, d.batch, d.uncounted)
	w.invokeRecvBatch(vs, d.ci.inputIdx, d.batch, d.time)
	w.postUpdate(progress.Pointstamp{Time: d.time, Loc: graph.ConnLoc(d.ci.id)}, -int64(n))
	d.batch.Release()
}

// invokeRecvBatch delivers one batch to a vertex: a single callback through
// the BatchVertex fast path when the vertex has one, otherwise one OnRecv
// per record. Either way the batch costs one activity bump and one
// time-stack frame. The batch is borrowed — the caller keeps its reference.
func (w *worker) invokeRecvBatch(vs *vertexState, input int, b *batchbuf.Batch, t ts.Timestamp) {
	w.comp.activity.Add(1)
	w.comp.counters.records[vs.si.id].Add(int64(b.Len()))
	vs.timeStack = append(vs.timeStack, timeFrame{t: t, canSend: true})
	vs.ctx.executing++
	var t0 int64
	if tr := w.tracer; tr != nil {
		t0 = tr.Now()
	}
	if vs.bv != nil {
		vs.bv.OnRecvBatch(input, b, t)
	} else {
		for i, n := 0, b.Len(); i < n; i++ {
			vs.vertex.OnRecv(input, b.Record(i), t)
		}
	}
	if tr := w.tracer; tr != nil {
		tr.CallbackN(w.id, int32(vs.si.id), t.Epoch, false, time.Duration(tr.Now()-t0), int64(b.Len()))
	}
	vs.ctx.executing--
	vs.timeStack = vs.timeStack[:len(vs.timeStack)-1]
}

// encodeFrame serializes a batch through the worker's pooled frame encoder.
// The returned bytes are valid only until the next encodeFrame call — long
// enough for a transport Send (every transport copies or writes before
// returning) but nothing that outlives the call.
func (w *worker) encodeFrame(ci *connInfo, dstVertex, srcVertex int, t ts.Timestamp, b *batchbuf.Batch) []byte {
	w.frameEnc.Reset()
	w.scratchBox = encodeDataInto(w.frameEnc, ci, dstVertex, srcVertex, t, b, w.scratchBox)
	return w.frameEnc.Bytes()
}

// encodeFrameOwned is encodeFrame into an exact-size copy the caller owns —
// for the replay log, barrier channel state, and the log sink, which all
// retain the frame.
func (w *worker) encodeFrameOwned(ci *connInfo, dstVertex, srcVertex int, t ts.Timestamp, b *batchbuf.Batch) []byte {
	return append([]byte(nil), w.encodeFrame(ci, dstVertex, srcVertex, t, b)...)
}

// invokeRecv runs a single OnRecv callback with time-stack bookkeeping.
func (w *worker) invokeRecv(vs *vertexState, input int, rec Message, t ts.Timestamp) {
	w.comp.activity.Add(1)
	w.comp.counters.records[vs.si.id].Add(1)
	vs.timeStack = append(vs.timeStack, timeFrame{t: t, canSend: true})
	vs.ctx.executing++
	if tr := w.tracer; tr != nil {
		t0 := tr.Now()
		vs.vertex.OnRecv(input, rec, t)
		tr.Callback(w.id, int32(vs.si.id), t.Epoch, false, time.Duration(tr.Now()-t0))
	} else {
		vs.vertex.OnRecv(input, rec, t)
	}
	vs.ctx.executing--
	vs.timeStack = vs.timeStack[:len(vs.timeStack)-1]
}

// notifyGated reports whether a pending notification is held back by an
// in-progress cut alignment: requests at or above the cut's epoch boundary
// belong to the post-snapshot execution, so they fire only after the
// vertex's fragment is captured. Sub-boundary requests are never gated —
// the snapshot waits for them, not the other way round.
func notifyGated(vs *vertexState, guarantee ts.Timestamp) bool {
	return vs.barrierCut != 0 && guarantee.Epoch >= vs.barrierEpoch
}

// rebuildNotifyCands rescans every vertex's pending list and collects the
// requests whose guarantee has no active precursor in the local view,
// ordered by guarantee time (stage id breaking ties). The local tracker
// changes only when a progress batch is applied, so this scan — formerly
// the body of every deliverOneNotify call — runs once per frontier
// movement instead of once per delivered notification.
func (w *worker) rebuildNotifyCands() {
	w.notifyDirty = false
	w.notifyCands = w.notifyCands[:0]
	for _, vs := range w.vsList {
		if len(vs.pending) == 0 {
			continue
		}
		loc := graph.StageLoc(vs.si.id)
		deliverable := false
		for i, nr := range vs.pending {
			if notifyGated(vs, nr.guarantee) {
				continue // resurfaces when the cut settles (clearBarrier)
			}
			// pending is guarantee-sorted: equal guarantees share a verdict.
			if i == 0 || vs.pending[i-1].guarantee != nr.guarantee {
				deliverable = !w.tracker.SomePrecursorOf(progress.Pointstamp{Time: nr.guarantee, Loc: loc})
			}
			if deliverable {
				w.notifyCands = append(w.notifyCands, notifyCand{vs: vs, guarantee: nr.guarantee})
			}
		}
	}
	sort.SliceStable(w.notifyCands, func(i, j int) bool {
		c := w.notifyCands[i].guarantee.Compare(w.notifyCands[j].guarantee)
		if c != 0 {
			return c < 0
		}
		return w.notifyCands[i].vs.si.id < w.notifyCands[j].vs.si.id
	})
}

// deliverOneNotify delivers at most one pending notification whose
// guarantee time has no active precursor in the local view, taken from the
// candidate queue. The queue is rebuilt lazily after the tracker changes;
// each popped candidate is revalidated against the live tracker (and the
// vertex's current pending list) before delivery, so staleness can only
// suppress a candidate — never deliver one unsafely. It reports whether a
// notification was delivered.
func (w *worker) deliverOneNotify() bool {
	if w.notifyDirty {
		w.rebuildNotifyCands()
	}
	for len(w.notifyCands) > 0 {
		cand := w.notifyCands[0]
		w.notifyCands = w.notifyCands[1:]
		vs := cand.vs
		i := sort.Search(len(vs.pending), func(i int) bool {
			return cand.guarantee.Compare(vs.pending[i].guarantee) <= 0
		})
		if i >= len(vs.pending) || vs.pending[i].guarantee != cand.guarantee {
			continue // already delivered; a duplicate candidate went stale
		}
		if notifyGated(vs, cand.guarantee) {
			// An alignment began after this candidate was queued; the request
			// is post-boundary now. clearBarrier marks the queue dirty, so the
			// rebuild after the cut settles resurfaces it.
			continue
		}
		loc := graph.StageLoc(vs.si.id)
		p := progress.Pointstamp{Time: cand.guarantee, Loc: loc}
		if w.tracker.SomePrecursorOf(p) {
			// Inserted optimistically (e.g. before the input seeds) and no
			// longer deliverable; the rebuild after the next frontier
			// movement will resurface it.
			continue
		}
		if m := w.comp.monitor; m != nil {
			if err := m.CheckDeliverable(w.id, p); err != nil {
				panic(err)
			}
		}
		nr := vs.pending[i]
		vs.pending = append(vs.pending[:i], vs.pending[i+1:]...)
		w.notifyCount--
		if w.dlogs != nil {
			if lg := w.dlogs[vs.si.id]; lg != nil {
				lg.add(vlogEntry{kind: vlogNotify, guarantee: nr.guarantee})
			}
		}
		w.comp.activity.Add(1)
		w.comp.counters.notifications[vs.si.id].Add(1)
		vs.timeStack = append(vs.timeStack, timeFrame{t: nr.capability, canSend: nr.hasCap})
		vs.ctx.executing++
		if tr := w.tracer; tr != nil {
			t0 := tr.Now()
			vs.vertex.OnNotify(nr.guarantee)
			tr.Callback(w.id, int32(vs.si.id), nr.guarantee.Epoch, true, time.Duration(tr.Now()-t0))
		} else {
			vs.vertex.OnNotify(nr.guarantee)
		}
		vs.ctx.executing--
		vs.timeStack = vs.timeStack[:len(vs.timeStack)-1]
		if nr.cap != nil {
			nr.cap.Drop()
		}
		if vs.barrierCut != 0 {
			// A sub-boundary notification just fired on an aligning vertex;
			// it may have been the last thing the snapshot was waiting for.
			w.tryCompleteBarrier(vs)
		}
		return true
	}
	return false
}

// sendBy implements Context.SendBy: timestamp adjustment for structural
// stages, occurrence-count updates, routing, and the synchronous local
// fast path with re-entrancy bounding (§3.2).
func (w *worker) sendBy(vs *vertexState, port int, msg Message, t ts.Timestamp) {
	if w.replaying {
		// Replay reconstructs state only: every send of the original
		// execution was already delivered (and logged at its receiver).
		return
	}
	si := vs.si
	if n := len(vs.timeStack); n > 0 {
		top := vs.timeStack[n-1]
		if !top.canSend {
			panic(fmt.Sprintf("runtime: %s sent a message from a purge notification", si.name))
		}
		if !top.t.LessEq(t) {
			panic(fmt.Sprintf("runtime: %s sent backwards in time: %v < callback time %v", si.name, t, top.t))
		}
	}
	if port < 0 || port >= si.numPorts {
		panic(fmt.Sprintf("runtime: stage %s: SendBy on invalid port %d", si.name, port))
	}
	outT := t
	switch si.role {
	case graph.RoleIngress:
		outT = t.PushLoop()
	case graph.RoleEgress:
		outT = t.PopLoop()
	case graph.RoleFeedback:
		outT = t.Tick()
		if si.hasMaxIter && outT.Inner() >= si.maxIter {
			return // iteration bound reached; drop the message
		}
	}
	for _, cid := range si.outPorts[port] {
		w.routeMessage(vs, w.comp.conn(cid), msg, outT)
	}
}

// sendBatchBy implements Context.SendBatchBy: sendBy's checks and timestamp
// actions at whole-batch granularity. It consumes one reference to b.
func (w *worker) sendBatchBy(vs *vertexState, port int, b *batchbuf.Batch, t ts.Timestamp) {
	if w.replaying {
		b.Release() // the original execution already delivered this send
		return
	}
	si := vs.si
	if n := len(vs.timeStack); n > 0 {
		top := vs.timeStack[n-1]
		if !top.canSend {
			panic(fmt.Sprintf("runtime: %s sent a message from a purge notification", si.name))
		}
		if !top.t.LessEq(t) {
			panic(fmt.Sprintf("runtime: %s sent backwards in time: %v < callback time %v", si.name, t, top.t))
		}
	}
	if port < 0 || port >= si.numPorts {
		panic(fmt.Sprintf("runtime: stage %s: SendBy on invalid port %d", si.name, port))
	}
	outT := t
	switch si.role {
	case graph.RoleIngress:
		outT = t.PushLoop()
	case graph.RoleEgress:
		outT = t.PopLoop()
	case graph.RoleFeedback:
		outT = t.Tick()
		if si.hasMaxIter && outT.Inner() >= si.maxIter {
			b.Release() // iteration bound reached; drop the batch
			return
		}
	}
	conns := si.outPorts[port]
	if len(conns) == 0 {
		b.Release()
		return
	}
	// routeBatch consumes a reference per connector; the batch arrives with
	// exactly one, so fan-out retains the difference up front.
	for i := 1; i < len(conns); i++ {
		b.Retain()
	}
	for _, cid := range conns {
		w.routeBatch(vs, w.comp.conn(cid), b, outT)
	}
}

// routeBatch routes a whole batch on one connector, consuming one reference
// to b. Unpartitioned (or single-peer) connectors forward the batch intact;
// partitioned ones hash every record — through the connector's batch
// partitioner when it has one, else the boxed per-record partitioner — and
// scatter into per-destination builder batches.
func (w *worker) routeBatch(vsSrc *vertexState, ci *connInfo, b *batchbuf.Batch, t ts.Timestamp) {
	n := b.Len()
	if n == 0 {
		b.Release()
		return
	}
	c := w.comp
	dstSi := c.stage(ci.dst)
	peers := dstSi.parallelism(c.cfg.Workers())
	w.postUpdate(progress.Pointstamp{Time: t, Loc: graph.ConnLoc(ci.id)}, int64(n))
	if ci.part == nil || peers == 1 {
		var dstVertex int
		switch {
		case dstSi.pinned >= 0 || peers == 1:
			dstVertex = 0
		default:
			dstVertex = w.id
		}
		w.routeBatchTo(vsSrc.vertexIdx, ci, b, dstVertex, t)
		return
	}
	// Vectorized exchange: hash the whole batch, then scatter. The hash
	// buffer and builder table are worker scratch, reused across calls.
	if cap(w.hashes) < n {
		w.hashes = make([]uint64, n)
	}
	hashes := w.hashes[:n]
	if ci.bpart == nil || !ci.bpart(b.Col().Slice(), hashes) {
		for i := 0; i < n; i++ {
			hashes[i] = ci.part(b.Record(i))
		}
	}
	depth := w.scatterDepth
	if depth == len(w.scatter) {
		w.scatter = append(w.scatter, nil)
	}
	if cap(w.scatter[depth]) < peers {
		w.scatter[depth] = make([]*batchbuf.Batch, peers)
	}
	subs := w.scatter[depth][:peers]
	for i := 0; i < n; i++ {
		dv := int(hashes[i] % uint64(peers))
		sub := subs[dv]
		if sub == nil {
			sub = b.NewLike(n)
			subs[dv] = sub
		}
		sub.AppendIndex(b, i)
	}
	b.Release()
	// Dispatch under a bumped depth: a synchronous delivery below may
	// re-enter routeBatch, which must not reuse this level's table.
	w.scatterDepth++
	for dv, sub := range subs {
		if sub != nil {
			subs[dv] = nil
			w.routeBatchTo(vsSrc.vertexIdx, ci, sub, dv, t)
		}
	}
	w.scatterDepth--
}

// routeBatchTo delivers a batch to one destination vertex of a connector,
// consuming one reference: synchronously when the destination is local and
// not too deeply re-entered, queued locally otherwise, or merged into the
// pending outgoing builder for a remote worker. The occurrence counts for
// the batch were already posted by routeBatch.
func (w *worker) routeBatchTo(src int, ci *connInfo, b *batchbuf.Batch, dstVertex int, t ts.Timestamp) {
	c := w.comp
	dstSi := c.stage(ci.dst)
	dstWorker := dstSi.workerFor(dstVertex)
	if dstWorker == w.id {
		if w.chanSent != nil {
			w.chanSent[chanKey(ci.id, dstVertex)]++
		}
		vsDst := w.vertices[ci.dst]
		limit := dstSi.reentrancy
		if limit == 0 {
			limit = c.cfg.maxReentrancy()
		}
		if c.cfg.DisableLocalFastPath {
			limit = 0
		}
		// Fencing and alignment gates as in routeMessage: a queued marker or
		// an aligning destination forces the batch through the queue.
		if w.localFence[ci.id] == 0 && vsDst.ctx.executing < limit &&
			!(vsDst.barrierCut != 0 && t.Epoch >= vsDst.barrierEpoch) {
			if dstSi.logged {
				w.comp.logBatch(dstSi.id, w.encodeFrameOwned(ci, dstVertex, src, t, b))
			}
			w.noteDelivery(ci, vsDst, src, t, b, false)
			w.invokeRecvBatch(vsDst, ci.inputIdx, b, t)
			w.postUpdate(progress.Pointstamp{Time: t, Loc: graph.ConnLoc(ci.id)}, -int64(b.Len()))
			b.Release()
		} else {
			w.localQ = append(w.localQ, delivery{ci: ci, vs: vsDst, src: src, time: t, batch: b})
		}
		return
	}
	key := outKey{conn: ci.id, dstWorker: dstWorker, time: t}
	if cur, ok := w.outBatch[key]; ok {
		if !cur.AppendBatch(b) {
			// Mixed record types on one connector: widen the builder to boxed.
			wide := batchbuf.GetBoxed(cur.Len() + b.Len())
			wide.AppendBatch(cur)
			cur.Release()
			wide.AppendBatch(b)
			w.outBatch[key] = wide
			cur = wide
		}
		b.Release()
		if cur.Len() >= w.comp.cfg.batchSize() {
			w.flushOne(key)
		}
		return
	}
	w.outBatch[key] = b // builder adopts the reference
	if b.Len() >= w.comp.cfg.batchSize() {
		w.flushOne(key)
	}
}

// routeMessage delivers msg on one connector: synchronously when the
// destination vertex is local and not too deeply re-entered, queued
// locally otherwise, or batched for transmission. vsSrc is the sending
// vertex (the channel's source endpoint).
func (w *worker) routeMessage(vsSrc *vertexState, ci *connInfo, msg Message, t ts.Timestamp) {
	c := w.comp
	dstSi := c.stage(ci.dst)
	peers := dstSi.parallelism(c.cfg.Workers())
	var dstVertex int
	switch {
	case ci.part != nil:
		dstVertex = int(ci.part(msg) % uint64(peers))
	case dstSi.pinned >= 0:
		dstVertex = 0
	default:
		dstVertex = w.id
	}
	dstWorker := dstSi.workerFor(dstVertex)
	src := vsSrc.vertexIdx
	w.postUpdate(progress.Pointstamp{Time: t, Loc: graph.ConnLoc(ci.id)}, 1)

	if dstWorker == w.id {
		if w.chanSent != nil {
			w.chanSent[chanKey(ci.id, dstVertex)]++
		}
		vsDst := w.vertices[ci.dst]
		limit := dstSi.reentrancy
		if limit == 0 {
			limit = c.cfg.maxReentrancy()
		}
		if c.cfg.DisableLocalFastPath {
			limit = 0
		}
		// A queued marker on this connector fences the fast path: delivering
		// synchronously would put a post-snapshot record ahead of the marker.
		// Likewise a destination aligning a cut must see its epoch-≥boundary
		// records through the queue, where deliverBatch defers them.
		if w.localFence[ci.id] == 0 && vsDst.ctx.executing < limit &&
			!(vsDst.barrierCut != 0 && t.Epoch >= vsDst.barrierEpoch) {
			if dstSi.logged || w.chanRecv != nil || w.dlogs != nil {
				one := batchbuf.One(msg)
				if dstSi.logged {
					w.comp.logBatch(dstSi.id, w.encodeFrameOwned(ci, dstVertex, src, t, one))
				}
				w.noteDelivery(ci, vsDst, src, t, one, false)
				one.Release()
			}
			w.invokeRecv(vsDst, ci.inputIdx, msg, t)
			w.postUpdate(progress.Pointstamp{Time: t, Loc: graph.ConnLoc(ci.id)}, -1)
		} else {
			w.localQ = append(w.localQ, delivery{ci: ci, vs: vsDst, src: src, time: t, batch: batchbuf.One(msg)})
		}
		return
	}
	key := outKey{conn: ci.id, dstWorker: dstWorker, time: t}
	bld, ok := w.outBatch[key]
	if !ok {
		bld = batchbuf.GetBoxed(w.comp.cfg.batchSize())
		w.outBatch[key] = bld
	}
	if !bld.Append(msg) {
		// A typed builder (installed by a batch send) met a foreign boxed
		// record: widen to a boxed builder.
		wide := batchbuf.GetBoxed(bld.Len() + 1)
		wide.AppendBatch(bld)
		bld.Release()
		wide.Append(msg)
		w.outBatch[key] = wide
		bld = wide
	}
	if bld.Len() >= w.comp.cfg.batchSize() {
		w.flushOne(key)
	}
}

// flushOne sends one pending outgoing batch.
func (w *worker) flushOne(key outKey) {
	b := w.outBatch[key]
	delete(w.outBatch, key)
	c := w.comp
	ci := c.conn(key.conn)
	dstProc := key.dstWorker / c.cfg.WorkersPerProcess
	dstSi := c.stage(ci.dst)
	dstVertex := key.dstWorker
	if dstSi.pinned >= 0 {
		dstVertex = 0
	}
	// The channel's source endpoint is this worker's vertex of the source
	// stage (a connector has exactly one sender per worker).
	src := w.id
	if c.stage(ci.src).pinned >= 0 {
		src = 0
	}
	if w.chanSent != nil {
		w.chanSent[chanKey(ci.id, dstVertex)]++
	}
	if dstProc == w.proc {
		// The push transfers the batch's reference to the receiving worker.
		c.workers[key.dstWorker].mailbox.push(mailItem{
			kind: mailLocalData, conn: key.conn, src: src,
			time: key.time, batch: b,
		})
		return
	}
	// Transports copy (or fully write) the payload before Send returns, so
	// the pooled frame encoder's view is safe to hand over.
	payload := w.encodeFrame(ci, dstVertex, src, key.time, b)
	c.trans.Send(w.proc, dstProc, transport.KindData, payload)
	b.Release()
}

// flushData sends all pending outgoing batches in a deterministic order.
func (w *worker) flushData() {
	if len(w.outBatch) == 0 {
		return
	}
	keys := make([]outKey, 0, len(w.outBatch))
	for k := range w.outBatch {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].conn != keys[j].conn {
			return keys[i].conn < keys[j].conn
		}
		if keys[i].dstWorker != keys[j].dstWorker {
			return keys[i].dstWorker < keys[j].dstWorker
		}
		return keys[i].time.Compare(keys[j].time) < 0
	})
	for _, k := range keys {
		w.flushOne(k)
	}
}

// postUpdate records a progress update for the next flush. Occurrence
// counts reach trackers (including this worker's own) only through the
// broadcast protocol, never directly. Adjacent updates to the same
// pointstamp — a routed batch's per-message +1s, a fast-path delivery's
// +1/-1 pair — coalesce into a single running ±count before touching the
// combining buffer; merging only adjacent runs preserves the worker's
// chronological order, so the safety monitor and the positives-first flush
// discipline see the same history. AccNone keeps the raw per-event stream:
// it exists to measure the uncombined protocol.
func (w *worker) postUpdate(p progress.Pointstamp, delta int64) {
	if w.replaying {
		// The original execution posted these counts; they were broadcast
		// and never retracted, so replay must not post them again.
		return
	}
	if m := w.comp.monitor; m != nil {
		if err := m.Post(p, delta); err != nil {
			panic(err)
		}
	}
	if w.comp.cfg.Accumulation == AccNone {
		w.raw = append(w.raw, update{P: p, D: delta})
		return
	}
	if w.havePend && w.pend.P == p {
		w.pend.D += delta
		return
	}
	w.flushPend()
	w.pend = update{P: p, D: delta}
	w.havePend = true
}

// flushPend moves the current run into the combining buffer, dropping runs
// that cancelled to zero (a local fast-path delivery's +1/-1 pair).
func (w *worker) flushPend() {
	if !w.havePend {
		return
	}
	if w.pend.D != 0 {
		w.pbuf.Add(w.pend.P, w.pend.D)
	}
	w.havePend = false
}

// flushProgress broadcasts this worker's pending updates (§3.3).
func (w *worker) flushProgress() {
	w.flushPend()
	var us []update
	if w.comp.cfg.Accumulation == AccNone {
		if len(w.raw) == 0 {
			return
		}
		us = w.raw
		w.raw = nil
	} else {
		if w.pbuf.Empty() {
			return
		}
		us = w.pbuf.Drain()
	}
	if w.tracer != nil {
		w.tracer.Emit(trace.Event{
			Kind: trace.EvProgressPost, Worker: int32(w.id), Stage: -1,
			Loc: -1, Epoch: -1, N: int64(len(us)),
		})
	}
	w.comp.routeWorkerFlush(w.proc, us)
}

// notifyAt implements Context.NotifyAt and NotifyAtPurge.
func (w *worker) notifyAt(vs *vertexState, guarantee, capability ts.Timestamp, hasCap bool) {
	w.notifyAtChecked(vs, guarantee, capability, hasCap)
}

// notifyAtCap implements Context.NotifyAtCap.
func (w *worker) notifyAtCap(vs *vertexState, guarantee, capability ts.Timestamp) {
	w.notifyAtChecked(vs, guarantee, capability, true)
}

func (w *worker) notifyAtChecked(vs *vertexState, guarantee, capability ts.Timestamp, hasCap bool) {
	if n := len(vs.timeStack); n > 0 {
		top := vs.timeStack[n-1]
		if !top.t.LessEq(guarantee) {
			panic(fmt.Sprintf("runtime: %s requested notification before callback time: %v < %v",
				vs.si.name, guarantee, top.t))
		}
		if hasCap && (!top.canSend || !top.t.LessEq(capability)) {
			panic(fmt.Sprintf("runtime: %s requested capability it does not hold: %v at callback time %v",
				vs.si.name, capability, top.t))
		}
	}
	nr := notifyReq{guarantee: guarantee, capability: capability, hasCap: hasCap}
	if hasCap {
		// The request holds a token at its capability time. During replay the
		// mint's +1 is suppressed (the pre-crash request already posted it) but
		// the token still registers, so the replayed pending list is live.
		nr.cap = w.caps.Mint(progress.Pointstamp{Time: capability, Loc: graph.StageLoc(vs.si.id)})
	}
	// Insert sorted by guarantee so earlier notifications deliver first.
	i := sort.Search(len(vs.pending), func(i int) bool {
		return guarantee.Compare(vs.pending[i].guarantee) < 0
	})
	vs.pending = append(vs.pending, notifyReq{})
	copy(vs.pending[i+1:], vs.pending[i:])
	vs.pending[i] = nr
	w.notifyCount++
	if w.replaying {
		return // counts recomputed after replay; no candidate bookkeeping
	}
	// Evaluate deliverability at insertion: the candidate queue is only
	// rebuilt on frontier movement, and an already-deliverable request
	// would otherwise wait for a progress batch that may never come.
	if notifyGated(vs, guarantee) {
		return // post-boundary request; resurfaces when the cut settles
	}
	if !w.notifyDirty && w.tracker != nil &&
		!w.tracker.SomePrecursorOf(progress.Pointstamp{Time: guarantee, Loc: graph.StageLoc(vs.si.id)}) {
		j := sort.Search(len(w.notifyCands), func(j int) bool {
			c := guarantee.Compare(w.notifyCands[j].guarantee)
			if c != 0 {
				return c < 0
			}
			return vs.si.id < w.notifyCands[j].vs.si.id
		})
		w.notifyCands = append(w.notifyCands, notifyCand{})
		copy(w.notifyCands[j+1:], w.notifyCands[j:])
		w.notifyCands[j] = notifyCand{vs: vs, guarantee: guarantee}
	}
}

// checkProbes advances registered probes past epochs that are complete at
// their location, according to this worker's (conservative) local view.
func (w *worker) checkProbes() {
	maxEpoch := w.comp.maxEpoch.Load()
	for _, pr := range w.comp.probes {
		next := pr.completed.Load() + 1
		for next <= maxEpoch {
			p := progress.Pointstamp{Time: ts.Root(next), Loc: pr.loc}
			if w.tracker.SomePrecursorOf(p) || w.tracker.Occurrence(p) > 0 {
				break
			}
			pr.advance(next)
			next++
		}
	}
}

// shutdownVertices delivers OnShutdown to vertices that want it, then
// reports any still-live capabilities to the leak audit. Only the clean
// termination path reaches here (aborts return early), so a reported token
// is a genuine leak — a permanent frontier stall — not a torn-down test.
func (w *worker) shutdownVertices() {
	for _, vs := range w.vsList {
		if n, ok := vs.vertex.(Notifiable); ok {
			n.OnShutdown()
		}
	}
	w.caps.ReportLeaks()
}

// forwardVertex is the system vertex of ingress, egress, and feedback
// stages: it forwards every message on port 0, letting sendBy apply the
// stage's timestamp action.
type forwardVertex struct {
	ctx *Context
}

func (v *forwardVertex) OnRecv(_ int, msg Message, t ts.Timestamp) {
	v.ctx.SendBy(0, msg, t)
}

// OnRecvBatch forwards the whole batch without unboxing it; the extra
// Retain balances SendBatchBy consuming a reference the runtime still holds.
func (v *forwardVertex) OnRecvBatch(_ int, b *Batch, t ts.Timestamp) {
	v.ctx.SendBatchBy(0, b.Retain(), t)
}

func (v *forwardVertex) OnNotify(ts.Timestamp) {}
