package runtime

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"naiad/internal/transport"
)

// StageMetrics is one stage's delivery counters.
type StageMetrics struct {
	Stage         StageID
	Name          string
	Records       int64 // OnRecv invocations
	Notifications int64 // OnNotify invocations
}

// MetricsSnapshot is a point-in-time view of the computation's activity:
// per-stage delivery counts plus transport traffic. Safe to take while the
// computation runs.
type MetricsSnapshot struct {
	Stages         []StageMetrics
	DataFrames     int64
	DataBytes      int64
	ProgressFrames int64
	ProgressBytes  int64
	// DroppedFrames counts frames (all kinds) the transport accepted but
	// never delivered — reconnect-queue overflow, dead links, exhausted
	// retry budgets. Nonzero means the failure detector has (or will have)
	// something to say; it must never be silently zero-by-omission.
	DroppedFrames int64
	LoggedBatches int64
	Recovery       RecoverySnapshot // zero unless RecoveryMetrics are attached
}

// RecoveryMetrics aggregates fault-tolerance counters. The supervisor
// shares one instance across every incarnation of a computation (see
// Computation.SetRecoveryMetrics), so checkpoint and restart counts
// survive the teardown/rebuild cycle that recovery itself performs.
type RecoveryMetrics struct {
	// Checkpoints counts snapshots taken; CheckpointBytes sums their
	// serialized sizes.
	Checkpoints     atomic.Int64
	CheckpointBytes atomic.Int64
	// Restarts counts completed teardown/rebuild/restore cycles.
	Restarts atomic.Int64
	// LastRecoveryNanos is the duration of the most recent recovery, from
	// failure detection to the replayed computation catching up.
	LastRecoveryNanos atomic.Int64
	// HeartbeatMisses counts overdue heartbeat deadlines observed by the
	// failure detector (one per overdue link per sweep).
	HeartbeatMisses atomic.Int64
	// Cuts counts completed asynchronous-barrier snapshot cuts; CutBytes
	// sums their serialized sizes; CutAborts counts cuts abandoned because
	// a marker was lost, duplicated, or reordered (or a worker crashed
	// mid-alignment).
	Cuts      atomic.Int64
	CutBytes  atomic.Int64
	CutAborts atomic.Int64
	// SelectiveRevivals counts single-worker rollbacks that restored only
	// the crashed worker while the rest of the cluster kept running.
	SelectiveRevivals atomic.Int64
}

// Snapshot returns a point-in-time copy of the counters.
func (r *RecoveryMetrics) Snapshot() RecoverySnapshot {
	return RecoverySnapshot{
		Checkpoints:       r.Checkpoints.Load(),
		CheckpointBytes:   r.CheckpointBytes.Load(),
		Restarts:          r.Restarts.Load(),
		LastRecovery:      time.Duration(r.LastRecoveryNanos.Load()),
		HeartbeatMisses:   r.HeartbeatMisses.Load(),
		Cuts:              r.Cuts.Load(),
		CutBytes:          r.CutBytes.Load(),
		CutAborts:         r.CutAborts.Load(),
		SelectiveRevivals: r.SelectiveRevivals.Load(),
	}
}

// RecoverySnapshot is the point-in-time view of RecoveryMetrics.
type RecoverySnapshot struct {
	Checkpoints     int64
	CheckpointBytes int64
	Restarts        int64
	LastRecovery    time.Duration
	HeartbeatMisses int64

	Cuts              int64
	CutBytes          int64
	CutAborts         int64
	SelectiveRevivals int64
}

// String renders the snapshot as an aligned table.
func (m *MetricsSnapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "stage metrics (%d stages):\n", len(m.Stages))
	for _, s := range m.Stages {
		fmt.Fprintf(&sb, "  %-20s records=%-10d notifications=%d\n", s.Name, s.Records, s.Notifications)
	}
	fmt.Fprintf(&sb, "transport: data %d frames / %d bytes, progress %d frames / %d bytes\n",
		m.DataFrames, m.DataBytes, m.ProgressFrames, m.ProgressBytes)
	if m.DroppedFrames > 0 {
		fmt.Fprintf(&sb, "transport: %d frames DROPPED\n", m.DroppedFrames)
	}
	if r := m.Recovery; r.Checkpoints > 0 || r.Restarts > 0 || r.HeartbeatMisses > 0 {
		fmt.Fprintf(&sb, "recovery: %d checkpoints / %d bytes, %d restarts (last recovery %v), %d heartbeat misses\n",
			r.Checkpoints, r.CheckpointBytes, r.Restarts, r.LastRecovery, r.HeartbeatMisses)
	}
	if r := m.Recovery; r.Cuts > 0 || r.CutAborts > 0 || r.SelectiveRevivals > 0 {
		fmt.Fprintf(&sb, "barriers: %d cuts / %d bytes, %d aborted, %d selective revivals\n",
			r.Cuts, r.CutBytes, r.CutAborts, r.SelectiveRevivals)
	}
	return sb.String()
}

// stageCounters holds the per-stage atomic counters, sized at Start.
type stageCounters struct {
	records       []atomic.Int64
	notifications []atomic.Int64
}

func newStageCounters(n int) *stageCounters {
	return &stageCounters{
		records:       make([]atomic.Int64, n),
		notifications: make([]atomic.Int64, n),
	}
}

// Metrics returns a snapshot of delivery and traffic counters. Before
// Start it returns an empty snapshot.
func (c *Computation) Metrics() *MetricsSnapshot {
	snap := &MetricsSnapshot{LoggedBatches: c.logCount.Load()}
	if c.recovery != nil {
		snap.Recovery = c.recovery.Snapshot()
	}
	if c.counters == nil {
		return snap
	}
	for _, si := range c.stages {
		snap.Stages = append(snap.Stages, StageMetrics{
			Stage:         si.id,
			Name:          si.name,
			Records:       c.counters.records[si.id].Load(),
			Notifications: c.counters.notifications[si.id].Load(),
		})
	}
	sort.Slice(snap.Stages, func(i, j int) bool { return snap.Stages[i].Stage < snap.Stages[j].Stage })
	if c.trans != nil {
		st := c.trans.Stats()
		snap.DataFrames = st.Frames(transport.KindData)
		snap.DataBytes = st.Bytes(transport.KindData)
		snap.ProgressFrames = st.Frames(transport.KindProgress)
		snap.ProgressBytes = st.Bytes(transport.KindProgress)
		snap.DroppedFrames = st.TotalDrops()
	}
	return snap
}
