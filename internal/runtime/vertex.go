package runtime

import (
	"naiad/internal/batchbuf"
	ts "naiad/internal/timestamp"
)

// Message is one dataflow record. The runtime is untyped at this level —
// exactly like Naiad's object-typed core — and the operator library layers
// generic type safety on top.
type Message = any

// Batch is a pooled, reference-counted batch of records — the unit the data
// plane moves. See batchbuf's package comment for the ownership rules.
type Batch = batchbuf.Batch

// Vertex is the low-level timely dataflow vertex API (§2.2). OnRecv is
// invoked once per delivered message; OnNotify once per delivered
// notification, only after no further OnRecv invocations at times ≤ t can
// occur. Both run on the single worker thread that owns the vertex, so
// implementations need no internal locking.
//
// During a callback with timestamp t, a vertex may only call SendBy or
// NotifyAt with times t' ≥ t; the runtime enforces this and panics on
// violations, since sending backwards in time would break the progress
// contract for every other vertex.
type Vertex interface {
	// OnRecv delivers one message that arrived on the input with the given
	// index (the position of the connector among the stage's inputs).
	OnRecv(input int, msg Message, t ts.Timestamp)
	// OnNotify signals that all messages bearing times ≤ t have been
	// delivered to this vertex.
	OnNotify(t ts.Timestamp)
}

// BatchVertex is the typed-batch fast path a vertex may optionally
// implement. When present, the runtime delivers whole batches through
// OnRecvBatch instead of boxing each record through OnRecv — one callback,
// one time-stack frame, and (for a typed batch) a single []T type assertion
// per batch.
//
// The batch is borrowed for the duration of the call: the runtime still
// owns it and releases it afterwards. A vertex that forwards the batch
// (ctx.SendBatchBy) or stores it past the callback must Retain it first.
// The slice obtained from b.Col().Slice() is likewise valid only during
// the callback unless the vertex holds a retained reference.
type BatchVertex interface {
	Vertex
	// OnRecvBatch delivers one batch that arrived on the input with the
	// given index. Equivalent to OnRecv once per record, at the same time.
	OnRecvBatch(input int, b *Batch, t ts.Timestamp)
}

// Notifiable is implemented by vertices that want a callback when the
// computation is shutting down, after all messages and notifications have
// drained. Final flushes belong in OnNotify; OnShutdown is for releasing
// external resources.
type Notifiable interface {
	OnShutdown()
}

// VertexFactory instantiates one vertex of a stage. It runs on the worker
// that will own the vertex; ctx is permanently bound to that vertex and is
// how the vertex sends messages and requests notifications.
type VertexFactory func(ctx *Context) Vertex

// Context is a vertex's handle to the runtime: its identity within the
// stage and the SendBy/NotifyAt system calls of §2.2. A Context must only
// be used from the vertex's own callbacks (or, before Start, not at all).
type Context struct {
	w         *worker
	vs        *vertexState
	index     int
	peers     int
	executing int // re-entrancy depth of the vertex, managed by the worker
}

// Index returns the vertex's index within its stage [0, Peers).
func (c *Context) Index() int { return c.index }

// Peers returns the number of parallel vertices in the stage.
func (c *Context) Peers() int { return c.peers }

// Worker returns the global index of the worker hosting this vertex.
func (c *Context) Worker() int { return c.w.id }

// Workers returns the total number of workers in the computation.
func (c *Context) Workers() int { return len(c.w.comp.workers) }

// SendBy emits msg with timestamp t on the stage's output port (§2.2). The
// message is routed to a destination vertex of each connector attached to
// the port using the connector's partitioning function; ingress, egress,
// and feedback stages adjust the timestamp in flight. The time must be ≥
// the time of the callback currently executing.
func (c *Context) SendBy(output int, msg Message, t ts.Timestamp) {
	c.w.sendBy(c.vs, output, msg, t)
}

// SendBatchBy emits a whole batch with timestamp t on the stage's output
// port — SendBy once per record, at batch cost: occurrence counts post once
// per batch, partitioned connectors hash and scatter the batch into
// per-destination builders, and local delivery invokes the destination's
// OnRecvBatch when it has one.
//
// The call consumes one reference to b: a vertex forwarding a borrowed
// batch passes b.Retain(). The batch must not be modified after the call.
func (c *Context) SendBatchBy(output int, b *Batch, t ts.Timestamp) {
	c.w.sendBatchBy(c.vs, output, b, t)
}

// NotifyAt requests an OnNotify(t) callback once no more messages at times
// ≤ t can arrive at this vertex (§2.2). Duplicate requests for the same
// time are delivered once per request.
func (c *Context) NotifyAt(t ts.Timestamp) {
	c.w.notifyAt(c.vs, t, t, true)
}

// NotifyAtCap requests a notification with distinct guarantee and
// capability times (§2.4): delivery waits until no messages at times ≤
// guarantee can arrive, while the notification holds back downstream
// frontiers only at capability. capability must be ≥ the current callback
// time; guarantee may be anything ≥ it as well.
func (c *Context) NotifyAtCap(guarantee, capability ts.Timestamp) {
	c.w.notifyAtCap(c.vs, guarantee, capability)
}

// NotifyAtPurge requests a "state purging" notification (§2.4): it is
// delivered once guarantee is complete but holds no capability at all, so
// it never delays other notifications and introduces no coordination.
// OnNotify for a purge notification must not send messages.
func (c *Context) NotifyAtPurge(guarantee ts.Timestamp) {
	c.w.notifyAt(c.vs, guarantee, ts.Timestamp{}, false)
}
