package runtime

import (
	"sync"
	"sync/atomic"

	"naiad/internal/graph"
)

// Probe observes epoch completion at a stage: WaitFor(e) blocks until no
// event at epoch e (or earlier) can still reach the stage. Probes are how
// external code synchronizes with the dataflow — the equivalent of Naiad's
// Computation.Sync. Probes must be created before Start.
type Probe struct {
	loc       graph.Location
	completed atomic.Int64 // highest epoch known complete; -1 initially
	done      atomic.Bool

	mu   sync.Mutex
	cond *sync.Cond
}

// NewProbe registers a probe at a stage's location.
func (c *Computation) NewProbe(stage StageID) *Probe {
	if c.started {
		panic("runtime: NewProbe after Start")
	}
	p := &Probe{loc: graph.StageLoc(stage)}
	p.completed.Store(-1)
	p.cond = sync.NewCond(&p.mu)
	c.probes = append(c.probes, p)
	return p
}

// advance publishes a newly completed epoch (called by worker 0). The lock
// pairs the store with the broadcast so WaitFor cannot miss a wakeup.
func (p *Probe) advance(epoch int64) {
	p.mu.Lock()
	p.completed.Store(epoch)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// finish wakes all waiters permanently (computation drained or failed).
func (p *Probe) finish() {
	p.mu.Lock()
	p.done.Store(true)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Done reports whether epoch is complete at the probe's location.
func (p *Probe) Done(epoch int64) bool {
	return p.completed.Load() >= epoch || p.done.Load()
}

// Completed returns the highest completed epoch (-1 before any).
func (p *Probe) Completed() int64 { return p.completed.Load() }

// WaitFor blocks until epoch completes at the probe's location, or the
// computation finishes or fails.
func (p *Probe) WaitFor(epoch int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.Done(epoch) {
		p.cond.Wait()
	}
}
