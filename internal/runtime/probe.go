package runtime

import (
	"sync"
	"sync/atomic"

	"naiad/internal/graph"
)

// Probe observes epoch completion at a stage: WaitFor(e) blocks until no
// event at epoch e (or earlier) can still reach the stage. Probes are how
// external code synchronizes with the dataflow — the equivalent of Naiad's
// Computation.Sync. Probes must be created before Start.
type Probe struct {
	loc       graph.Location
	completed atomic.Int64 // highest epoch known complete; -1 initially
	done      atomic.Bool

	mu   sync.Mutex
	cond *sync.Cond
	err  error // first failure that finished the probe; nil on clean drain
}

// NewProbe registers a probe at a stage's location.
func (c *Computation) NewProbe(stage StageID) *Probe {
	if c.started {
		panic("runtime: NewProbe after Start")
	}
	p := &Probe{loc: graph.StageLoc(stage)}
	p.completed.Store(-1)
	p.cond = sync.NewCond(&p.mu)
	c.probes = append(c.probes, p)
	return p
}

// advance publishes a newly completed epoch (called by worker 0). The lock
// pairs the store with the broadcast so WaitFor cannot miss a wakeup.
func (p *Probe) advance(epoch int64) {
	p.mu.Lock()
	p.completed.Store(epoch)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// finish wakes all waiters permanently (computation drained or failed),
// recording the failure — if any — that cut the computation short. The
// first recorded error wins; a clean drain leaves it nil.
func (p *Probe) finish(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.done.Store(true)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Done reports whether epoch is complete at the probe's location.
func (p *Probe) Done(epoch int64) bool {
	return p.completed.Load() >= epoch || p.done.Load()
}

// Completed returns the highest completed epoch (-1 before any).
func (p *Probe) Completed() int64 { return p.completed.Load() }

// Err returns the failure that finished the probe, or nil while the
// computation is healthy or after a clean drain.
func (p *Probe) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// WaitFor blocks until epoch completes at the probe's location, or the
// computation finishes or fails. It cannot distinguish those outcomes;
// use WaitForErr when the difference matters.
func (p *Probe) WaitFor(epoch int64) {
	_ = p.WaitForErr(epoch)
}

// WaitForErr blocks like WaitFor and reports how the wait ended: nil when
// the epoch completed at the probe's location (including the vacuous case
// of a computation that drained before reaching the epoch — nothing can
// arrive there anymore), or the computation's failure when the probe was
// released by an abort instead of by progress.
func (p *Probe) WaitForErr(epoch int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.Done(epoch) {
		p.cond.Wait()
	}
	if p.completed.Load() >= epoch {
		return nil
	}
	return p.err
}
