package runtime

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
	"naiad/internal/trace"
)

// Asynchronous barrier snapshots (Chandy-Lamport aligned barriers, after
// "Lightweight Asynchronous Snapshots for Distributed Dataflows"), aligned
// to an epoch boundary E: a cut is started by injecting barrier markers at
// the input stages, which must sit exactly at epoch E with no epoch-≥E
// records fed yet. Each vertex begins aligning when the first marker for
// the cut reaches it: it keeps processing pre-boundary (epoch < E) records
// and notifications normally, while records of epochs ≥ E are deferred —
// logged into the cut as in-flight channel state and held, unprocessed, in
// arrival order. Once every input channel's marker has arrived AND every
// pending notification below the boundary has fired, the vertex snapshots:
// its fragment is then exactly the state a stop-the-world checkpoint at
// epoch E would capture. It forwards markers downstream ahead of any
// post-snapshot output, then replays its deferred records as ordinary
// traffic. No channel pauses and no worker stalls: steady-state traffic
// flows through the barrier, and the pre-boundary frontier drains globally
// because nothing below E is ever held back.
//
// A channel is one ordered (connector, source vertex) pair. Marker
// integrity is checked with per-channel batch counters: the marker carries
// the sender's cumulative batch count for the channel, and the receiver
// compares it with its own delivery count at marker arrival. Any FIFO
// violation — a reordered, duplicated, or misrouted marker — poisons the
// cut (it is abandoned, never torn); a dropped marker stalls the cut until
// the coordinator aborts it. Markers are invisible to the progress
// protocol: they carry no pointstamps, so the frontier invariant is
// untouched by checkpointing.

// BarrierMarker is one barrier message on one channel. Markers travel
// in-band with data: through the local delivery queue on a worker, through
// mailboxes between workers of a process, and as KindControl transport
// frames between processes — always behind the data batches sent before
// them on the same link.
type BarrierMarker struct {
	Cut   int64             // cut id, monotone per computation lifetime
	Epoch int64             // the cut's epoch boundary E
	Conn  graph.ConnectorID // the channel's connector
	Src   int               // sending vertex index (channel endpoint)
	Dst   int               // receiving vertex index (for routing)
	Count int64             // sender's cumulative batch count on the channel
}

// Barrier-marker wire format: a fixed header — magic "NBRK", format
// version, CRC-32C of the body — followed by the fixed-width body. Markers
// cross process boundaries, so hostile bytes must produce an error, never
// a panic (FuzzBarrierDecode enforces this).
const (
	markerMagic      = 0x4e42524b // "NBRK"
	markerVersion    = 2          // v2 added the epoch boundary
	markerHeaderSize = 9
	markerBodySize   = 8 + 8 + 4 + 4 + 4 + 8
)

var markerCRC = crc32.MakeTable(crc32.Castagnoli)

// EncodeBarrierMarker serializes a marker for transmission.
func EncodeBarrierMarker(m BarrierMarker) []byte {
	out := make([]byte, markerHeaderSize+markerBodySize)
	binary.LittleEndian.PutUint32(out[0:4], markerMagic)
	out[4] = markerVersion
	body := out[markerHeaderSize:]
	binary.LittleEndian.PutUint64(body[0:8], uint64(m.Cut))
	binary.LittleEndian.PutUint64(body[8:16], uint64(m.Epoch))
	binary.LittleEndian.PutUint32(body[16:20], uint32(m.Conn))
	binary.LittleEndian.PutUint32(body[20:24], uint32(m.Src))
	binary.LittleEndian.PutUint32(body[24:28], uint32(m.Dst))
	binary.LittleEndian.PutUint64(body[28:36], uint64(m.Count))
	binary.LittleEndian.PutUint32(out[5:9], crc32.Checksum(body, markerCRC))
	return out
}

// DecodeBarrierMarker parses a serialized marker, validating the magic,
// version, length, and body checksum. Untrusted bytes never panic.
func DecodeBarrierMarker(data []byte) (BarrierMarker, error) {
	var m BarrierMarker
	if len(data) != markerHeaderSize+markerBodySize {
		return m, fmt.Errorf("runtime: barrier marker is %d bytes, want %d", len(data), markerHeaderSize+markerBodySize)
	}
	if mg := binary.LittleEndian.Uint32(data[0:4]); mg != markerMagic {
		return m, fmt.Errorf("runtime: bad barrier marker magic %#x", mg)
	}
	if v := data[4]; v != markerVersion {
		return m, fmt.Errorf("runtime: unsupported barrier marker version %d (want %d)", v, markerVersion)
	}
	body := data[markerHeaderSize:]
	if sum := crc32.Checksum(body, markerCRC); sum != binary.LittleEndian.Uint32(data[5:9]) {
		return m, fmt.Errorf("runtime: barrier marker checksum mismatch")
	}
	m.Cut = int64(binary.LittleEndian.Uint64(body[0:8]))
	m.Epoch = int64(binary.LittleEndian.Uint64(body[8:16]))
	m.Conn = graph.ConnectorID(binary.LittleEndian.Uint32(body[16:20]))
	m.Src = int(binary.LittleEndian.Uint32(body[20:24]))
	m.Dst = int(binary.LittleEndian.Uint32(body[24:28]))
	m.Count = int64(binary.LittleEndian.Uint64(body[28:36]))
	return m, nil
}

// PendingNotification is one outstanding NotifyAt request captured in a
// cut: its delivery guarantee, the capability it holds, and whether it
// holds one at all (purge notifications do not).
type PendingNotification struct {
	Guarantee  ts.Timestamp
	Capability ts.Timestamp
	HasCap     bool
}

// HeldCapability is one capability a vertex held at the snapshot instant:
// its per-vertex sequence number (the stable identity vertices checkpoint)
// and its time at capture.
type HeldCapability struct {
	Seq  uint64
	Time ts.Timestamp
}

// CapFragment is one vertex's held-capability state at the snapshot
// instant: the next sequence number it would assign — replayed callbacks
// must continue the exact numbering — and the capabilities still held.
// Like Pending, it serves selective rollback only; a full restore ignores
// it (the input replay regenerates every hold).
type CapFragment struct {
	Next uint64
	Held []HeldCapability
}

// CutSnapshot is one complete asynchronous snapshot, aligned to the epoch
// boundary Epoch: every vertex's state after processing exactly the epochs
// below the boundary, the pending notifications each vertex held at its
// snapshot instant (all at or above the boundary), the input epoch
// positions, and the deferred in-flight batches logged during alignment
// (encoded data frames, in delivery order, all at or above the boundary).
//
// Because the fragments sit exactly on the epoch boundary, a full restore
// needs only Vertices and InputEpochs — it is interchangeable with a
// stop-the-world Snapshot taken at the same boundary, and the feeding
// client replays epochs ≥ Epoch exactly as it would for one (RestoreCut).
// Pending and Channels serve selective rollback: a revived worker replays
// its delivery log from the snapshot instant, which needs the notification
// requests outstanding at that instant, and the deferred batches document
// the in-flight channel state the log's first entries redeliver.
type CutSnapshot struct {
	Cut         int64
	Epoch       int64
	Vertices    map[StageID]map[int][]byte // stage → vertex index → state
	InputEpochs map[StageID]int64
	Pending     map[StageID]map[int][]PendingNotification
	Channels    [][]byte // encoded data frames deferred across the boundary
	Caps        map[StageID]map[int]CapFragment
}

func newCutSnapshot(cut, epoch int64) *CutSnapshot {
	return &CutSnapshot{
		Cut:         cut,
		Epoch:       epoch,
		Vertices:    make(map[StageID]map[int][]byte),
		InputEpochs: make(map[StageID]int64),
		Pending:     make(map[StageID]map[int][]PendingNotification),
		Caps:        make(map[StageID]map[int]CapFragment),
	}
}

// cutVersion is the NSNP format version of an encoded CutSnapshot. Version
// 1 (EncodeSnapshot) remains the quiesce-path format; both share the NSNP
// header, so a store can hold a mix and SnapshotFormatVersion dispatches.
// Version 3 added the held-capability fragments.
const cutVersion = 3

// SnapshotFormatVersion reports the NSNP format version of an encoded
// snapshot or cut without decoding its body.
func SnapshotFormatVersion(data []byte) (uint32, error) {
	if len(data) < snapshotHeaderSize {
		return 0, fmt.Errorf("runtime: snapshot too short: %d bytes", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != snapshotMagic {
		return 0, fmt.Errorf("runtime: bad snapshot magic %#x", m)
	}
	return binary.LittleEndian.Uint32(data[4:8]), nil
}

func putTimestamp(e *codec.Encoder, t ts.Timestamp) {
	e.PutInt64(t.Epoch)
	e.PutUint8(t.Depth)
	for i := uint8(0); i < t.Depth; i++ {
		e.PutInt64(t.Counters[i])
	}
}

// EncodeCut serializes a cut for durable storage, framed with the same
// versioned, checksummed NSNP header as EncodeSnapshot (format version 2).
func EncodeCut(s *CutSnapshot) []byte {
	enc := codec.NewEncoder(1024)
	enc.PutInt64(s.Cut)
	enc.PutInt64(s.Epoch)
	enc.PutUint32(uint32(len(s.Vertices)))
	for sid, m := range s.Vertices {
		enc.PutUint32(uint32(sid))
		enc.PutUint32(uint32(len(m)))
		for idx, data := range m {
			enc.PutUint32(uint32(idx))
			enc.PutBytes(data)
		}
	}
	enc.PutUint32(uint32(len(s.InputEpochs)))
	for sid, e := range s.InputEpochs {
		enc.PutUint32(uint32(sid))
		enc.PutInt64(e)
	}
	enc.PutUint32(uint32(len(s.Pending)))
	for sid, m := range s.Pending {
		enc.PutUint32(uint32(sid))
		enc.PutUint32(uint32(len(m)))
		for idx, pns := range m {
			enc.PutUint32(uint32(idx))
			enc.PutUint32(uint32(len(pns)))
			for _, pn := range pns {
				putTimestamp(enc, pn.Guarantee)
				putTimestamp(enc, pn.Capability)
				if pn.HasCap {
					enc.PutUint8(1)
				} else {
					enc.PutUint8(0)
				}
			}
		}
	}
	enc.PutUint32(uint32(len(s.Channels)))
	for _, ch := range s.Channels {
		enc.PutBytes(ch)
	}
	enc.PutUint32(uint32(len(s.Caps)))
	for sid, m := range s.Caps {
		enc.PutUint32(uint32(sid))
		enc.PutUint32(uint32(len(m)))
		for idx, cf := range m {
			enc.PutUint32(uint32(idx))
			enc.PutUint64(cf.Next)
			enc.PutUint32(uint32(len(cf.Held)))
			for _, h := range cf.Held {
				enc.PutUint64(h.Seq)
				putTimestamp(enc, h.Time)
			}
		}
	}
	body := enc.Bytes()
	out := make([]byte, snapshotHeaderSize+len(body))
	binary.LittleEndian.PutUint32(out[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(out[4:8], cutVersion)
	binary.LittleEndian.PutUint32(out[8:12], crc32.Checksum(body, snapshotCRC))
	copy(out[snapshotHeaderSize:], body)
	return out
}

// UnmarshalCut parses a serialized cut, validating the header, version,
// and body checksum. Untrusted bytes (a file off disk, a fuzzer) never
// panic: structural damage surfaces as an error.
func UnmarshalCut(data []byte) (*CutSnapshot, error) {
	if len(data) < snapshotHeaderSize {
		return nil, fmt.Errorf("runtime: cut too short: %d bytes", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != snapshotMagic {
		return nil, fmt.Errorf("runtime: bad cut magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != cutVersion {
		return nil, fmt.Errorf("runtime: unsupported cut version %d (want %d)", v, cutVersion)
	}
	body := data[snapshotHeaderSize:]
	if sum := crc32.Checksum(body, snapshotCRC); sum != binary.LittleEndian.Uint32(data[8:12]) {
		return nil, fmt.Errorf("runtime: cut checksum mismatch: body is corrupt")
	}
	s := newCutSnapshot(0, 0)
	err := codec.Catch(func() {
		dec := codec.NewDecoder(body)
		s.Cut = dec.Int64()
		s.Epoch = dec.Int64()
		for n := dec.Count(8); n > 0; n-- {
			sid := StageID(dec.Uint32())
			m := make(map[int][]byte)
			for k := dec.Count(8); k > 0; k-- {
				idx := int(dec.Uint32())
				m[idx] = append([]byte(nil), dec.BytesView()...)
			}
			s.Vertices[sid] = m
		}
		for n := dec.Count(12); n > 0; n-- {
			sid := StageID(dec.Uint32())
			s.InputEpochs[sid] = dec.Int64()
		}
		for n := dec.Count(8); n > 0; n-- {
			sid := StageID(dec.Uint32())
			m := make(map[int][]PendingNotification)
			for k := dec.Count(8); k > 0; k-- {
				idx := int(dec.Uint32())
				pns := make([]PendingNotification, dec.Count(19))
				for i := range pns {
					pns[i].Guarantee = decodeTime(dec)
					pns[i].Capability = decodeTime(dec)
					pns[i].HasCap = dec.Uint8() != 0
				}
				m[idx] = pns
			}
			s.Pending[sid] = m
		}
		s.Channels = make([][]byte, dec.Count(4))
		for i := range s.Channels {
			s.Channels[i] = append([]byte(nil), dec.BytesView()...)
		}
		for n := dec.Count(16); n > 0; n-- {
			sid := StageID(dec.Uint32())
			m := make(map[int]CapFragment)
			for k := dec.Count(16); k > 0; k-- {
				idx := int(dec.Uint32())
				var cf CapFragment
				cf.Next = dec.Uint64()
				cf.Held = make([]HeldCapability, dec.Count(17))
				for i := range cf.Held {
					cf.Held[i].Seq = dec.Uint64()
					cf.Held[i].Time = decodeTime(dec)
				}
				m[idx] = cf
			}
			s.Caps[sid] = m
		}
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// chanKey packs a channel identity — or, on the sending side, a (connector,
// destination vertex) pair — into one map key.
func chanKey(conn graph.ConnectorID, vertex int) uint64 {
	return uint64(uint32(conn))<<32 | uint64(uint32(vertex))
}

// cutState tracks one in-flight cut at the computation level: vertices
// report their aligned fragments, and the cut completes when every vertex
// in the graph has reported. The first protocol violation poisons the cut;
// late reports for a settled cut are ignored.
type cutState struct {
	cut     int64
	want    int
	got     int
	settled bool
	snap    *CutSnapshot
	t0      int64 // tracer clock at injection, 0 when tracing is off
}

// SetCutHandler installs the asynchronous-snapshot completion callback,
// invoked once per injected cut from a runtime goroutine: with the
// assembled CutSnapshot on success, or with a nil snapshot and the poison
// reason when the cut was torn or aborted. Must be called before Start;
// installing a handler enables barrier support, which requires a codec on
// every connector (in-flight channel batches are logged serialized).
func (c *Computation) SetCutHandler(h func(cut int64, snap *CutSnapshot, err error)) {
	if c.started {
		panic("runtime: SetCutHandler after Start")
	}
	c.onCut = h
}

// SetWorkerCrashHandler installs the single-worker failure callback and
// enables selective rollback support: every worker keeps an in-memory
// delivery log segmented by cut, so a crashed worker can be revived with
// ReviveWorker while the rest of the cluster keeps running. Must be called
// before Start; requires a codec on every connector.
func (c *Computation) SetWorkerCrashHandler(h func(worker int)) {
	if c.started {
		panic("runtime: SetWorkerCrashHandler after Start")
	}
	c.onWorkerCrash = h
}

// cutExpected counts the vertices that must report for a cut to complete:
// every physical vertex of every stage, input and system stages included.
func (c *Computation) cutExpected() int {
	n := 0
	for _, si := range c.stages {
		n += si.parallelism(c.cfg.Workers())
	}
	return n
}

// InjectBarrier starts asynchronous snapshot cut `cut` at epoch boundary
// `epoch` by sending a barrier-start control to every worker; input-stage
// vertices snapshot immediately and emit markers downstream. The caller
// must hold every input exactly at `epoch`, with no epoch-≥epoch records
// fed yet — that discipline is what makes the assembled fragments sit on
// the boundary; feeding later epochs may resume immediately after this
// returns (they are deferred through the alignment). It returns without
// waiting: the cut handler fires when the cut completes or fails. Cut ids
// must be positive and strictly increasing across the computation's
// lifetime. Only one cut may be in flight at a time.
func (c *Computation) InjectBarrier(cut, epoch int64) error {
	if !c.started {
		return fmt.Errorf("runtime: InjectBarrier before Start")
	}
	if c.onCut == nil {
		return fmt.Errorf("runtime: InjectBarrier without a cut handler")
	}
	if cut <= 0 {
		return fmt.Errorf("runtime: cut ids must be positive, got %d", cut)
	}
	if epoch < 0 {
		return fmt.Errorf("runtime: cut epoch boundaries must be non-negative, got %d", epoch)
	}
	c.cutMu.Lock()
	if cur := c.curCut; cur != nil && !cur.settled {
		c.cutMu.Unlock()
		return fmt.Errorf("runtime: cut %d still in flight", cur.cut)
	}
	if cut <= c.lastCutID {
		c.cutMu.Unlock()
		return fmt.Errorf("runtime: cut ids must increase: %d after %d", cut, c.lastCutID)
	}
	c.lastCutID = cut
	cs := &cutState{cut: cut, want: c.cutExpected(), snap: newCutSnapshot(cut, epoch)}
	if tr := c.cfg.Tracer; tr != nil {
		cs.t0 = tr.Now()
		tr.Emit(trace.Event{Kind: trace.EvBarrierInject, Worker: -1, Stage: -1, Loc: -1, Epoch: cut, N: epoch})
	}
	c.curCut = cs
	c.cutMu.Unlock()
	for _, w := range c.workers {
		w.mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{op: ctlBarrier, cut: cut, epoch: epoch}})
	}
	return nil
}

// AbortCut abandons an in-flight cut: the handler fires with an error, and
// every worker discards its partial alignment state (merging the cut's
// delivery-log segments back). Data flow is unaffected — an aborted cut
// costs the snapshot, nothing else.
func (c *Computation) AbortCut(cut int64) {
	c.poisonCut(cut, fmt.Errorf("runtime: cut %d aborted by coordinator", cut))
	for _, w := range c.workers {
		w.mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{op: ctlBarrierAbort, cut: cut}})
	}
}

// RetireCut tells every worker that the cut is complete and durable:
// delivery-log segments older than it are pruned, and stray late markers
// for it (a duplicating network) are dropped instead of misinterpreted.
// Call it after persisting the cut the handler delivered.
func (c *Computation) RetireCut(cut int64) {
	for _, w := range c.workers {
		w.mailbox.push(mailItem{kind: mailControl, ctl: &controlMsg{op: ctlCutRetire, cut: cut}})
	}
}

// reportCutFragment records one vertex's aligned contribution. The last
// fragment completes the cut and fires the handler from a fresh goroutine
// (never from a worker thread — the handler may block on disk).
func (c *Computation) reportCutFragment(cut int64, sid StageID, idx int, frag []byte,
	pending []PendingNotification, caps CapFragment, chans [][]byte, isInput bool, inputEpoch int64) {
	c.cutMu.Lock()
	cs := c.curCut
	if cs == nil || cs.cut != cut || cs.settled {
		c.cutMu.Unlock()
		return
	}
	if frag != nil {
		m := cs.snap.Vertices[sid]
		if m == nil {
			m = make(map[int][]byte)
			cs.snap.Vertices[sid] = m
		}
		m[idx] = frag
	}
	if len(pending) > 0 {
		m := cs.snap.Pending[sid]
		if m == nil {
			m = make(map[int][]PendingNotification)
			cs.snap.Pending[sid] = m
		}
		m[idx] = pending
	}
	if caps.Next != 0 || len(caps.Held) > 0 {
		m := cs.snap.Caps[sid]
		if m == nil {
			m = make(map[int]CapFragment)
			cs.snap.Caps[sid] = m
		}
		m[idx] = caps
	}
	cs.snap.Channels = append(cs.snap.Channels, chans...)
	if isInput {
		// Every vertex of an input stage sits at the same epoch when the
		// barrier reaches it (the injector orders it after all feeds).
		cs.snap.InputEpochs[sid] = inputEpoch
	}
	cs.got++
	done := cs.got == cs.want
	if done {
		cs.settled = true
	}
	t0 := cs.t0
	c.cutMu.Unlock()
	if done {
		if tr := c.cfg.Tracer; tr != nil {
			tr.Emit(trace.Event{Kind: trace.EvBarrierCut, Worker: -1, Stage: -1, Loc: -1,
				Epoch: cut, Dur: tr.Now() - t0, N: int64(len(cs.snap.Channels))})
		}
		h := c.onCut
		snap := cs.snap
		go h(cut, snap, nil)
	}
}

// poisonCut fails an in-flight cut: the handler fires once with the
// reason; everything already collected is discarded. A poisoned cut is
// never observable as a snapshot — torn cuts cannot happen, only missing
// ones.
func (c *Computation) poisonCut(cut int64, reason error) {
	c.cutMu.Lock()
	cs := c.curCut
	if cs == nil || cs.cut != cut || cs.settled {
		c.cutMu.Unlock()
		return
	}
	cs.settled = true
	c.cutMu.Unlock()
	if h := c.onCut; h != nil {
		go h(cut, nil, reason)
	}
}
