package runtime

import (
	"bytes"
	"testing"

	"naiad/internal/batchbuf"
	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// buildFrameFixture wires a minimal two-stage graph and returns its one
// connector, configured with the given codec.
func buildFrameFixture(t testing.TB, cod codec.Codec) (*Computation, *connInfo) {
	c, err := NewComputation(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	src := c.AddStage("src", graph.RoleInput, 0, nil)
	dst := c.AddStage("dst", graph.RoleNormal, 0,
		func(ctx *Context) Vertex { return &forwardVertex{ctx: ctx} })
	c.Connect(src, 0, dst, nil, cod)
	return c, c.conns[0]
}

// TestBatchFrameBytesMatchBoxed is the differential property behind the
// typed fast path: a frame encoded from a typed []int64 column through
// EncodeColumn must be byte-identical to the same records encoded one by
// one through the boxed EncodeBatch interface — across linear, loop, and
// nested-loop timestamps, and for both the fast-path and gob codecs. Peers
// on the wire cannot tell (and must not care) which path the sender took.
func TestBatchFrameBytesMatchBoxed(t *testing.T) {
	times := map[string]ts.Timestamp{
		"linear": ts.Root(5),
		"loop":   ts.Root(2).PushLoop().Tick(),
		"nested": ts.Root(7).PushLoop().Tick().PushLoop().Tick().Tick(),
	}
	codecs := map[string]codec.Codec{
		"int64": codec.Int64(),
		"gob":   codec.Gob[int64](),
	}
	values := []int64{0, 1, -1, 1 << 40, -(1 << 40), 42}
	for cn, cod := range codecs {
		c, ci := buildFrameFixture(t, cod)
		for tn, tm := range times {
			boxed := make([]Message, len(values))
			for i, v := range values {
				boxed[i] = v
			}
			oldFrame := encodeData(ci, 3, 1, tm, boxed)

			tb, col := batchbuf.PoolFor[int64]().Get(len(values))
			col.Data = append(col.Data, values...)
			enc := codec.NewEncoder(64)
			encodeDataInto(enc, ci, 3, 1, tm, tb, nil)
			newFrame := enc.Bytes()

			if !bytes.Equal(oldFrame, newFrame) {
				t.Errorf("%s/%s: typed-column frame differs from boxed frame:\n old %x\n new %x",
					cn, tn, oldFrame, newFrame)
			}

			// And the typed decode path must reproduce the records exactly.
			_, dv, sv, gotT, b := decodeDataBatch(c, newFrame)
			if dv != 3 || sv != 1 || gotT != tm {
				t.Errorf("%s/%s: header round trip: dst=%d src=%d t=%v", cn, tn, dv, sv, gotT)
			}
			if b.Len() != len(values) {
				t.Fatalf("%s/%s: decoded %d records, want %d", cn, tn, b.Len(), len(values))
			}
			for i, v := range values {
				if got := b.Record(i).(int64); got != v {
					t.Errorf("%s/%s: record %d = %d, want %d", cn, tn, i, got, v)
				}
			}
			b.Release()
			tb.Release()
		}
	}
}

// TestEncodeFrameAllocs pins the fix for the old encodeData capacity guess
// (32 + 16·len undercounted, forcing mid-encode growth and a fresh buffer
// per frame): with a reused pooled encoder and a typed column, steady-state
// frame encoding is down to the single unavoidable allocation — boxing the
// []T slice header into the `any` handed across the EncodeColumn seam.
// Everything batch-sized (record bytes, encoder growth) is amortized away.
func TestEncodeFrameAllocs(t *testing.T) {
	_, ci := buildFrameFixture(t, codec.Int64())
	tb, col := batchbuf.PoolFor[int64]().Get(256)
	for i := 0; i < 256; i++ {
		col.Data = append(col.Data, int64(i))
	}
	defer tb.Release()
	tm := ts.Root(1).PushLoop().Tick()
	enc := codec.NewEncoder(64)
	// Warm up once so the encoder buffer reaches steady-state capacity.
	encodeDataInto(enc, ci, 0, 0, tm, tb, nil)
	allocs := testing.AllocsPerRun(100, func() {
		enc.Reset()
		encodeDataInto(enc, ci, 0, 0, tm, tb, nil)
	})
	if allocs > 1 {
		t.Fatalf("pooled frame encode allocates %.1f objects/frame, want at most 1 (the column slice-header box)", allocs)
	}
}
