package runtime

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"naiad/internal/codec"
	"naiad/internal/graph"
	ts "naiad/internal/timestamp"
)

// TestMultipleInputsEpochSkew drives two inputs whose epochs advance at
// different rates: notifications at a join point must wait for the slower
// input's epoch to complete.
func TestMultipleInputsEpochSkew(t *testing.T) {
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast := c.NewInput("fast")
	slow := c.NewInput("slow")
	s := newSink()
	merge := c.AddStage("merge", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		var pending []int64
		seen := map[int64]bool{}
		return &funcVertex{
			onRecv: func(_ int, m Message, tm ts.Timestamp) {
				if !seen[tm.Epoch] {
					seen[tm.Epoch] = true
					ctx.NotifyAt(tm)
				}
				pending = append(pending, m.(int64))
			},
			onNotify: func(tm ts.Timestamp) {
				var sum int64
				for _, v := range pending {
					sum += v
				}
				pending = pending[:0]
				ctx.SendBy(0, sum, tm)
			},
		}
	}, Pinned(0))
	c.Connect(fast.Stage(), 0, merge, func(Message) uint64 { return 0 }, codec.Int64())
	c.Connect(slow.Stage(), 0, merge, func(Message) uint64 { return 0 }, codec.Int64())
	snk := sinkStage(c, s, "sink")
	c.Connect(merge, 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	probe := c.NewProbe(snk)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Fast advances to epoch 3 immediately; slow lingers at 0.
	fast.Send(int64(1))
	fast.AdvanceTo(3)
	if probe.Done(0) {
		t.Fatal("epoch 0 cannot complete while slow is open at 0")
	}
	slow.Send(int64(10))
	slow.AdvanceTo(3)
	probe.WaitFor(0)
	// Epoch 0 combined both inputs despite the skew.
	if got := s.sorted(0); fmt.Sprint(got) != "[11]" {
		t.Fatalf("epoch 0 = %v", got)
	}
	fast.Close()
	slow.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
}

func TestInputMisusePanics(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	mk := func() (*Computation, *Input) {
		c, err := NewComputation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := c.NewInput("in")
		s := newSink()
		snk := sinkStage(c, s, "sink")
		c.Connect(in.Stage(), 0, snk, nil, nil)
		return c, in
	}
	t.Run("send before start", func(t *testing.T) {
		_, in := mk()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		in.Send(int64(1))
	})
	t.Run("send after close", func(t *testing.T) {
		c, in := mk()
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		in.Close()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
			_ = c.Join()
		}()
		in.Send(int64(1))
	})
	t.Run("advance backwards", func(t *testing.T) {
		c, in := mk()
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		in.AdvanceTo(5)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
			in.Close()
			_ = c.Join()
		}()
		in.AdvanceTo(4)
	})
	t.Run("double close ok", func(t *testing.T) {
		c, in := mk()
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		in.Close()
		in.Close()
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("advance same epoch ok", func(t *testing.T) {
		c, in := mk()
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		in.AdvanceTo(2)
		in.AdvanceTo(2)
		in.Close()
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestContextAccessors checks vertex identity plumbing.
func TestContextAccessors(t *testing.T) {
	cfg := Config{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	type identity struct{ idx, peers, worker, workers int }
	var ids []identity
	in := c.NewInput("in")
	st := c.AddStage("ids", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		mu.Lock()
		ids = append(ids, identity{ctx.Index(), ctx.Peers(), ctx.Worker(), ctx.Workers()})
		mu.Unlock()
		return &funcVertex{}
	})
	c.Connect(in.Stage(), 0, st, nil, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("vertices = %d", len(ids))
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if id.peers != 4 || id.workers != 4 || id.idx != id.worker {
			t.Fatalf("identity %+v", id)
		}
		seen[id.idx] = true
	}
	if len(seen) != 4 {
		t.Fatalf("indices = %v", seen)
	}
}

// TestLargePayloadOverTCP pushes batches past typical socket buffer sizes
// through the loopback TCP transport.
func TestLargePayloadOverTCP(t *testing.T) {
	cfg := Config{Processes: 2, WorkersPerProcess: 1, Accumulation: AccLocalGlobal, UseTCP: true,
		BatchSize: 100_000}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	s := newSink()
	// Pin the sink on the *other* process so every record crosses TCP.
	snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &sinkVertex{ctx: ctx, s: s}
	}, Pinned(1))
	c.Connect(in.Stage(), 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 60_000 // ~480 KB in one frame
	batch := make([]Message, n)
	var want int64
	for i := range batch {
		batch[i] = int64(i)
		want += int64(i)
	}
	in.SendToWorker(0, batch)
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, v := range s.sorted(0) {
		got += v
	}
	if got != want || len(s.sorted(0)) != n {
		t.Fatalf("sum = %d (%d records), want %d (%d)", got, len(s.sorted(0)), want, n)
	}
}

// TestNotifyBeforeCallbackTimePanics enforces the §2.2 rule for
// notifications, mirroring the SendBy rule.
func TestNotifyBeforeCallbackTimePanics(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	st := c.AddStage("bad", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &funcVertex{onRecv: func(_ int, _ Message, tm ts.Timestamp) {
			//lint:naiad-vet:timemono deliberate violation: provokes the runtime's dynamic check
			ctx.NotifyAt(ts.Root(tm.Epoch - 1))
		}}
	})
	c.Connect(in.Stage(), 0, st, nil, nil)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.AdvanceTo(2)
	in.Send(int64(1))
	in.Close()
	err = c.Join()
	if err == nil || !strings.Contains(err.Error(), "notification before callback time") {
		t.Fatalf("Join error = %v", err)
	}
}

// TestEmptyComputationDrains is the degenerate case: inputs that are
// closed without data must still shut the computation down cleanly.
func TestEmptyComputationDrains(t *testing.T) {
	for _, cfg := range []Config{
		{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal},
		{Processes: 2, WorkersPerProcess: 2, Accumulation: AccNone},
	} {
		c, err := NewComputation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := c.NewInput("in")
		s := newSink()
		snk := sinkStage(c, s, "sink")
		c.Connect(in.Stage(), 0, snk, nil, codec.Int64())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeepEpochJump advances an input across a large epoch gap and checks
// progress bookkeeping survives the long +1/-1 chain.
func TestDeepEpochJump(t *testing.T) {
	cfg := Config{Processes: 1, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, CheckInvariants: true}
	c, err := NewComputation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(in.Stage(), 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	in.Send(int64(1))
	in.AdvanceTo(5000)
	in.Send(int64(2))
	in.Close()
	if err := c.Join(); err != nil {
		t.Fatal(err)
	}
	if got := s.sorted(0); fmt.Sprint(got) != "[1]" {
		t.Fatalf("epoch 0 = %v", got)
	}
	if got := s.sorted(5000); fmt.Sprint(got) != "[2]" {
		t.Fatalf("epoch 5000 = %v", got)
	}
	// Notification order respected across the jump.
	if fmt.Sprint(s.notified) != "[0 5000]" {
		t.Fatalf("notified = %v", s.notified)
	}
}

// TestLoggedWithoutCodecFailsStart: logging serializes batches, so Logged
// stages must have codecs on their inputs even in one process.
func TestLoggedWithoutCodecFailsStart(t *testing.T) {
	c, err := NewComputation(Config{Processes: 1, WorkersPerProcess: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.SetLogSink(logSinkFunc(func(StageID, []byte) error { return nil }))
	in := c.NewInput("in")
	s := newSink()
	snk := c.AddStage("sink", graph.RoleNormal, 0, func(ctx *Context) Vertex {
		return &sinkVertex{ctx: ctx, s: s}
	}, Pinned(0), Logged())
	c.Connect(in.Stage(), 0, snk, nil, nil) // nil codec
	if err := c.Start(); err == nil || !strings.Contains(err.Error(), "codec") {
		t.Fatalf("Start error = %v", err)
	}
}

// TestSendToWorkerBounds rejects out-of-range worker indices clearly.
func TestSendToWorkerBounds(t *testing.T) {
	c, err := NewComputation(Config{Processes: 1, WorkersPerProcess: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInput("in")
	s := newSink()
	snk := sinkStage(c, s, "sink")
	c.Connect(in.Stage(), 0, snk, nil, codec.Int64())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
		in.Close()
		_ = c.Join()
	}()
	in.SendToWorker(5, []Message{int64(1)})
}
