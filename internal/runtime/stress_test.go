package runtime

import (
	"fmt"
	"math/rand"
	"testing"

	"naiad/internal/codec"
	"naiad/internal/graph"
)

// TestProtocolModesAgree runs randomized dataflows (random pipeline
// shapes, loop attachments, epoch patterns, and record sets) under every
// accumulation mode and every transport, with tracker invariants checked,
// and asserts the per-epoch outputs are identical across all
// configurations. This is the distributed progress protocol's equivalence
// test: batching and routing of updates must never change results.
func TestProtocolModesAgree(t *testing.T) {
	type result map[int64][]int64
	run := func(seed int64, cfg Config) result {
		r := rand.New(rand.NewSource(seed))
		c, err := NewComputation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := c.NewInput("in")
		prev := in.Stage()
		// Random pipeline of 1..3 deterministic map stages.
		nStages := 1 + r.Intn(3)
		for i := 0; i < nStages; i++ {
			mul := int64(1 + r.Intn(3))
			st := mapStage(c, fmt.Sprintf("m%d", i), func(v int64) int64 { return v*mul + 1 })
			c.Connect(prev, 0, st, hashPart, codec.Int64())
			prev = st
		}
		// Optionally a loop that iterates values up to a bound.
		if r.Intn(2) == 0 {
			bound := int64(20 + r.Intn(30))
			ing := c.AddStage("I", graph.RoleIngress, 0, nil)
			body := c.AddStage("body", graph.RoleNormal, 1, func(ctx *Context) Vertex {
				return &loopBody{ctx: ctx, limit: bound}
			}, Ports(2))
			fb := c.AddStage("F", graph.RoleFeedback, 1, nil)
			eg := c.AddStage("E", graph.RoleEgress, 1, nil)
			c.Connect(prev, 0, ing, hashPart, codec.Int64())
			c.Connect(ing, 0, body, hashPart, codec.Int64())
			c.Connect(body, 0, fb, nil, codec.Int64())
			c.Connect(fb, 0, body, hashPart, codec.Int64())
			c.Connect(body, 1, eg, nil, codec.Int64())
			prev = eg
		}
		s := newSink()
		snk := sinkStage(c, s, "sink")
		c.Connect(prev, 0, snk, func(Message) uint64 { return 0 }, codec.Int64())
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		nEpochs := 1 + r.Intn(4)
		for e := 0; e < nEpochs; e++ {
			n := r.Intn(20)
			recs := make([]Message, n)
			for i := range recs {
				recs[i] = int64(r.Intn(100))
			}
			in.Send(recs...)
			in.Advance()
		}
		in.Close()
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
		out := result{}
		for e := 0; e < nEpochs; e++ {
			out[int64(e)] = s.sorted(int64(e))
		}
		return out
	}

	configs := []Config{
		{Processes: 1, WorkersPerProcess: 1, Accumulation: AccLocalGlobal, CheckInvariants: true},
		{Processes: 1, WorkersPerProcess: 4, Accumulation: AccNone, CheckInvariants: true},
		{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocal, CheckInvariants: true},
		{Processes: 2, WorkersPerProcess: 2, Accumulation: AccGlobal, CheckInvariants: true},
		{Processes: 4, WorkersPerProcess: 1, Accumulation: AccLocalGlobal, CheckInvariants: true},
		{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, UseTCP: true},
		{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, DisableLocalFastPath: true},
		{Processes: 2, WorkersPerProcess: 2, Accumulation: AccLocalGlobal, NotificationsFirst: true},
	}
	for seed := int64(0); seed < 8; seed++ {
		// The random workload must be identical across configs: the seed
		// drives structure and data; cfg only changes execution.
		ref := run(seed, configs[0])
		for _, cfg := range configs[1:] {
			got := run(seed, cfg)
			if len(got) != len(ref) {
				t.Fatalf("seed %d cfg %+v: epochs %d vs %d", seed, cfg, len(got), len(ref))
			}
			for e, want := range ref {
				if fmt.Sprint(got[e]) != fmt.Sprint(want) {
					t.Fatalf("seed %d cfg %+v epoch %d:\n got %v\nwant %v", seed, cfg, e, got[e], want)
				}
			}
		}
	}
}
