package graphalgo

import (
	"math/rand"

	"naiad/internal/codec"
	"naiad/internal/lib"
	"naiad/internal/workload"
)

// SrcNode keys a distance by (sampled source, node).
type SrcNode struct {
	Src, Node int64
}

// byNodeCodec serializes the rekeyed (node, (srcnode, dist)) records the
// propagation loop exchanges on every step; a hand-written codec keeps the
// inner loop off the gob reflection path.
func byNodeCodec() codec.Codec {
	return codec.New(
		func(e *codec.Encoder, v lib.Pair[int64, lib.Pair[SrcNode, int64]]) {
			e.PutInt64(v.Key)
			e.PutInt64(v.Val.Key.Src)
			e.PutInt64(v.Val.Key.Node)
			e.PutInt64(v.Val.Val)
		},
		func(d *codec.Decoder) lib.Pair[int64, lib.Pair[SrcNode, int64]] {
			return lib.Pair[int64, lib.Pair[SrcNode, int64]]{
				Key: d.Int64(),
				Val: lib.Pair[SrcNode, int64]{Key: SrcNode{Src: d.Int64(), Node: d.Int64()}, Val: d.Int64()},
			}
		},
	)
}

// distCodec serializes Pair[SrcNode, int64] distance records.
func distCodec() codec.Codec {
	return codec.New(
		func(e *codec.Encoder, v lib.Pair[SrcNode, int64]) {
			e.PutInt64(v.Key.Src)
			e.PutInt64(v.Key.Node)
			e.PutInt64(v.Val)
		},
		func(d *codec.Decoder) lib.Pair[SrcNode, int64] {
			return lib.Pair[SrcNode, int64]{Key: SrcNode{Src: d.Int64(), Node: d.Int64()}, Val: d.Int64()}
		},
	)
}

// BuildASP wires the approximate-shortest-paths dataflow of §6.1: BFS
// distance labels from a sample of source nodes propagate through the
// (undirected) graph, each (source, node) pair keeping its minimum
// distance via monotonic aggregation — the incremental, sparse-iteration
// algorithm the paper credits for ASP's 600× speedup over batch systems.
func BuildASP(s *lib.Scope, edges *lib.Stream[workload.Edge], sources []int64, maxIters int64) *lib.Stream[lib.Pair[SrcNode, int64]] {
	both := lib.SelectMany(edges, func(e workload.Edge) []lib.Pair[int64, int64] {
		if e.Src == e.Dst {
			return nil
		}
		return []lib.Pair[int64, int64]{lib.KV(e.Src, e.Dst), lib.KV(e.Dst, e.Src)}
	}, PairCodec())

	sampled := make(map[int64]struct{}, len(sources))
	for _, src := range sources {
		sampled[src] = struct{}{}
	}
	// Seed distance 0 at each sampled source.
	seeds := lib.SelectMany(edges, func(e workload.Edge) []lib.Pair[SrcNode, int64] {
		var out []lib.Pair[SrcNode, int64]
		if _, ok := sampled[e.Src]; ok {
			out = append(out, lib.Pair[SrcNode, int64]{Key: SrcNode{Src: e.Src, Node: e.Src}, Val: 0})
		}
		if _, ok := sampled[e.Dst]; ok {
			out = append(out, lib.Pair[SrcNode, int64]{Key: SrcNode{Src: e.Dst, Node: e.Dst}, Val: 0})
		}
		return out
	}, distCodec())

	edgesIn := lib.EnterLoop(both, 1)
	props := lib.Iterate(seeds, maxIters, func(inner *lib.Stream[lib.Pair[SrcNode, int64]]) *lib.Stream[lib.Pair[SrcNode, int64]] {
		best := lib.AggregateMonotonic(inner, func(cand, inc int64) bool { return cand < inc })
		// Rekey by node to meet the adjacency, then step to neighbors.
		byNode := lib.Select(best, func(p lib.Pair[SrcNode, int64]) lib.Pair[int64, lib.Pair[SrcNode, int64]] {
			return lib.KV(p.Key.Node, p)
		}, byNodeCodec())
		return lib.Join(byNode, edgesIn, func(_ int64, dist lib.Pair[SrcNode, int64], neighbor int64) lib.Pair[SrcNode, int64] {
			return lib.Pair[SrcNode, int64]{Key: SrcNode{Src: dist.Key.Src, Node: neighbor}, Val: dist.Val + 1}
		}, distCodec())
	})
	all := lib.Concat(props, seeds)
	return lib.AggregateMonotonic(all, func(cand, inc int64) bool { return cand < inc })
}

// ASP runs approximate shortest paths from k sampled sources and returns
// min distance per (source, node).
func ASP(s *lib.Scope, edgeList []workload.Edge, k int, seed int64, maxIters int64) (map[SrcNode]int64, error) {
	nodes := make(map[int64]struct{})
	for _, e := range edgeList {
		nodes[e.Src] = struct{}{}
		nodes[e.Dst] = struct{}{}
	}
	all := make([]int64, 0, len(nodes))
	for n := range nodes {
		all = append(all, n)
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if k > len(all) {
		k = len(all)
	}
	sources := all[:k]

	in, edges := lib.NewInput[workload.Edge](s, "edges", EdgeCodec())
	dists := BuildASP(s, edges, sources, maxIters)
	col := lib.Collect(dists)
	if err := s.C.Start(); err != nil {
		return nil, err
	}
	in.Send(edgeList...)
	in.Close()
	if err := s.C.Join(); err != nil {
		return nil, err
	}
	out := make(map[SrcNode]int64)
	for _, p := range col.All() {
		if cur, ok := out[p.Key]; !ok || p.Val < cur {
			out[p.Key] = p.Val
		}
	}
	return out, nil
}
