package graphalgo

import (
	"math"
	"testing"

	"naiad/internal/workload"
)

// TestPageRankDeltaConvergesToFixedPoint checks the sparse delta scheme
// reaches the same fixed point as running the dense iteration for a long
// time, within the propagation threshold's error bound.
func TestPageRankDeltaConvergesToFixedPoint(t *testing.T) {
	const nodes = 60
	const damping = 0.85
	const eps = 1e-12
	edges := workload.PowerLawGraph(17, nodes, 400, 1.4)
	got, err := PageRankDelta(scope(t), edges, nodes, damping, eps, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.ExpectedPageRank(edges, nodes, 200, damping)
	present := map[int64]struct{}{}
	for _, e := range edges {
		present[e.Src] = struct{}{}
		present[e.Dst] = struct{}{}
	}
	if len(got) != len(present) {
		t.Fatalf("ranked %d nodes, want %d", len(got), len(present))
	}
	for n := range present {
		if math.Abs(got[n]-want[n]) > 1e-6 {
			t.Fatalf("node %d: delta %.12f, dense %.12f", n, got[n], want[n])
		}
	}
}

// TestPageRankDeltaSparseTail checks the algorithm's point: with a loose
// threshold the computation quiesces quickly and still lands near the
// fixed point (bounded error), doing far less work than the dense sweep.
func TestPageRankDeltaSparseTail(t *testing.T) {
	const nodes = 60
	const damping = 0.85
	edges := workload.PowerLawGraph(17, nodes, 400, 1.4)
	got, err := PageRankDelta(scope(t), edges, nodes, damping, 1e-5, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.ExpectedPageRank(edges, nodes, 200, damping)
	var worst float64
	for n, r := range got {
		if d := math.Abs(r - want[n]); d > worst {
			worst = d
		}
	}
	// Truncated deltas accumulate across nodes and iterations, amplified
	// by 1/(1-d); 1e-2 is a generous envelope for ε=1e-5 at this size.
	if worst > 1e-2 {
		t.Fatalf("worst error %v with loose threshold", worst)
	}
	if worst == 0 {
		t.Fatal("suspiciously exact: threshold had no effect?")
	}
}
