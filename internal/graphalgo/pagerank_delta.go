package graphalgo

import (
	"math"

	"naiad/internal/graph"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
	"naiad/internal/workload"
)

// prDeltaVertex implements delta PageRank: instead of recomputing every
// rank each iteration, vertices accumulate incoming rank *deltas* and
// scatter damped shares only while the delta exceeds a threshold. The
// computation converges by quiescence — the tail iterations touch only
// the few nodes still changing, the sparse-iteration regime the paper
// credits for its Table 1 wins and that PrIter [45] targets.
//
// The fixed point is the power-series PageRank: rank(v) = Σ_k (1-d)/N ·
// (d·Aᵀ)^k, identical to running the dense iteration to convergence.
type prDeltaVertex struct {
	ctx     *runtime.Context
	n       float64
	damping float64
	epsilon float64

	adj   map[int64][]int64
	rank  map[int64]float64
	accum map[ts.Timestamp]map[int64]float64
}

func (v *prDeltaVertex) OnRecv(input int, msg runtime.Message, t ts.Timestamp) {
	if v.accum[t] == nil {
		v.accum[t] = make(map[int64]float64)
		v.ctx.NotifyAt(t)
	}
	switch input {
	case 0:
		e := msg.(workload.Edge)
		v.adj[e.Src] = append(v.adj[e.Src], e.Dst)
	default: // looped contributions (1) and initial seeds (2)
		p := msg.(lib.Pair[int64, float64])
		v.accum[t][p.Key] += p.Val
	}
}

func (v *prDeltaVertex) OnNotify(t ts.Timestamp) {
	acc := v.accum[t]
	delete(v.accum, t)
	for node, delta := range acc {
		v.rank[node] += delta
		outs := v.adj[node]
		if len(outs) == 0 || math.Abs(delta) < v.epsilon {
			continue // converged here (or dangling): stop propagating
		}
		share := v.damping * delta / float64(len(outs))
		for _, dst := range outs {
			v.ctx.SendBy(0, lib.Pair[int64, float64]{Key: dst, Val: share}, t)
		}
	}
	// Publish updated ranks tagged with the iteration so the latest wins.
	for node := range acc {
		v.ctx.SendBy(1, rankAt{Node: node, Iter: t.Inner(), Rank: v.rank[node]}, t)
	}
}

// rankAt tags a rank observation with its iteration.
type rankAt struct {
	Node int64
	Iter int64
	Rank float64
}

// PageRankDelta runs delta PageRank to convergence (threshold epsilon) and
// returns the final ranks. maxIters bounds the loop defensively; with a
// positive epsilon the computation quiesces on its own.
func PageRankDelta(s *lib.Scope, edgeList []workload.Edge, nodes int64, damping, epsilon float64, maxIters int64) (map[int64]float64, error) {
	c := s.C
	in, edges := lib.NewInput[workload.Edge](s, "edges", EdgeCodec())
	edgesIn := lib.EnterLoop(edges, 1)

	// Every node's teleport mass enters as its first delta, through the
	// same contribution path the loop uses.
	base := (1 - damping) / float64(nodes)
	nodeSeeds := lib.Select(
		lib.DistinctCumulative(lib.SelectMany(edges, func(e workload.Edge) []int64 {
			return []int64{e.Src, e.Dst}
		}, nil)),
		func(n int64) lib.Pair[int64, float64] { return lib.KV(n, base) },
		rankCodec())
	seedsIn := lib.EnterLoop(nodeSeeds, 1)
	pr := c.AddStage("pagerank-delta", graph.RoleNormal, 1, func(ctx *runtime.Context) runtime.Vertex {
		return &prDeltaVertex{
			ctx: ctx, n: float64(nodes), damping: damping, epsilon: epsilon,
			adj:   make(map[int64][]int64),
			rank:  make(map[int64]float64),
			accum: make(map[ts.Timestamp]map[int64]float64),
		}
	}, runtime.Ports(2))
	fb := c.AddStage("prd-feedback", graph.RoleFeedback, 1, nil, runtime.MaxIterations(maxIters))
	c.Connect(edgesIn.Stage(), 0, pr, func(m runtime.Message) uint64 {
		return lib.Hash(m.(workload.Edge).Src)
	}, EdgeCodec())
	c.Connect(pr, 0, fb, nil, rankCodec())
	c.Connect(fb, 0, pr, func(m runtime.Message) uint64 {
		return lib.Hash(m.(lib.Pair[int64, float64]).Key)
	}, rankCodec())
	// Seeds arrive on a third input; the vertex treats them exactly like
	// looped contributions.
	c.Connect(seedsIn.Stage(), 0, pr, func(m runtime.Message) uint64 {
		return lib.Hash(m.(lib.Pair[int64, float64]).Key)
	}, rankCodec())

	observations := lib.LeaveLoop(lib.StreamOf[rankAt](s, pr, 1, nil, 1))
	latest := lib.FoldByKey(
		lib.Select(observations, func(r rankAt) lib.Pair[int64, rankAt] { return lib.KV(r.Node, r) }, nil),
		func(int64) rankAt { return rankAt{Iter: -1} },
		func(acc rankAt, r rankAt) rankAt {
			if r.Iter >= acc.Iter {
				return r
			}
			return acc
		}, nil)
	col := lib.Collect(latest)
	if err := c.Start(); err != nil {
		return nil, err
	}
	in.Send(edgeList...)
	in.Close()
	if err := c.Join(); err != nil {
		return nil, err
	}
	out := make(map[int64]float64)
	for _, p := range col.All() {
		out[p.Key] = p.Val.Rank
	}
	return out, nil
}
