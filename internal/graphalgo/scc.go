package graphalgo

import (
	"fmt"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/workload"
)

// directedMinLabels propagates each node's minimum "seen" id along edge
// direction: the result maps every node to the minimum id that can reach
// it. Reversing the edges gives the minimum id each node can reach.
func directedMinLabels(s *lib.Scope, edges *lib.Stream[workload.Edge], maxIters int64) *lib.Stream[lib.Pair[int64, int64]] {
	keyed := lib.Select(edges, func(e workload.Edge) lib.Pair[int64, int64] {
		return lib.KV(e.Src, e.Dst)
	}, PairCodec())
	seeds := lib.SelectMany(edges, func(e workload.Edge) []lib.Pair[int64, int64] {
		return []lib.Pair[int64, int64]{lib.KV(e.Src, e.Src), lib.KV(e.Dst, e.Dst)}
	}, PairCodec())
	edgesIn := lib.EnterLoop(keyed, 1)
	props := lib.Iterate(seeds, maxIters, func(inner *lib.Stream[lib.Pair[int64, int64]]) *lib.Stream[lib.Pair[int64, int64]] {
		best := lib.AggregateMonotonic(inner, func(cand, inc int64) bool { return cand < inc })
		return lib.Join(best, edgesIn, func(_ int64, label, dst int64) lib.Pair[int64, int64] {
			return lib.KV(dst, label)
		}, PairCodec())
	})
	all := lib.Concat(props, seeds)
	return lib.AggregateMonotonic(all, func(cand, inc int64) bool { return cand < inc })
}

// sccRound computes forward and backward min-labels for the remaining
// subgraph in one timely computation with two independent loops.
func sccRound(cfg runtime.Config, edges []workload.Edge, maxIters int64) (fwd, bwd map[int64]int64, err error) {
	s, err := lib.NewScope(cfg)
	if err != nil {
		return nil, nil, err
	}
	in, stream := lib.NewInput[workload.Edge](s, "edges", EdgeCodec())
	rev := lib.Select(stream, func(e workload.Edge) workload.Edge {
		return workload.Edge{Src: e.Dst, Dst: e.Src}
	}, EdgeCodec())
	fwdLabels := directedMinLabels(s, stream, maxIters)
	bwdLabels := directedMinLabels(s, rev, maxIters)
	fwdCol := lib.Collect(fwdLabels)
	bwdCol := lib.Collect(bwdLabels)
	if err := s.C.Start(); err != nil {
		return nil, nil, err
	}
	in.Send(edges...)
	in.Close()
	if err := s.C.Join(); err != nil {
		return nil, nil, err
	}
	collapse := func(col *lib.Collector[lib.Pair[int64, int64]]) map[int64]int64 {
		m := make(map[int64]int64)
		for _, p := range col.All() {
			if cur, ok := m[p.Key]; !ok || p.Val < cur {
				m[p.Key] = p.Val
			}
		}
		return m
	}
	return collapse(fwdCol), collapse(bwdCol), nil
}

// SCC computes strongly connected components with the forward/backward
// min-label trimming algorithm the paper's SCC program uses (§6.1): each
// round, a node whose forward label (minimum id that reaches it) equals
// its backward label (minimum id it reaches) belongs to that id's SCC;
// assigned nodes are removed and the rounds repeat on the shrinking
// subgraph, each round a fresh timely computation. Singleton nodes are
// their own components.
func SCC(cfg runtime.Config, edges []workload.Edge, maxIters int64) (map[int64]int64, error) {
	assign := make(map[int64]int64)
	remaining := append([]workload.Edge(nil), edges...)
	nodes := make(map[int64]struct{})
	for _, e := range edges {
		nodes[e.Src] = struct{}{}
		nodes[e.Dst] = struct{}{}
	}
	for round := 0; len(remaining) > 0; round++ {
		if round > len(nodes)+1 {
			return nil, fmt.Errorf("graphalgo: SCC failed to converge after %d rounds", round)
		}
		fwd, bwd, err := sccRound(cfg, remaining, maxIters)
		if err != nil {
			return nil, err
		}
		newly := make(map[int64]int64)
		for n, f := range fwd {
			if b, ok := bwd[n]; ok && b == f {
				newly[n] = f
			}
		}
		if len(newly) == 0 {
			return nil, fmt.Errorf("graphalgo: SCC round %d assigned nothing", round)
		}
		for n, c := range newly {
			assign[n] = c
		}
		// Keep only edges between two unassigned nodes.
		kept := remaining[:0]
		for _, e := range remaining {
			if _, a := assign[e.Src]; a {
				continue
			}
			if _, b := assign[e.Dst]; b {
				continue
			}
			kept = append(kept, e)
		}
		remaining = kept
	}
	// Nodes never assigned (all their edges vanished) are singletons.
	for n := range nodes {
		if _, ok := assign[n]; !ok {
			assign[n] = n
		}
	}
	return assign, nil
}
