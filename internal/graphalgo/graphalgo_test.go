package graphalgo

import (
	"math"
	"testing"

	"naiad/internal/lib"
	"naiad/internal/runtime"
	"naiad/internal/workload"
)

func cfg() runtime.Config {
	return runtime.Config{Processes: 2, WorkersPerProcess: 2, Accumulation: runtime.AccLocalGlobal}
}

func scope(t *testing.T) *lib.Scope {
	t.Helper()
	s, err := lib.NewScope(cfg())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWCCMatchesUnionFind(t *testing.T) {
	for name, edges := range map[string][]workload.Edge{
		"random": workload.RandomGraph(42, 200, 400),
		"chains": workload.ChainGraph(5, 20),
		"cycles": workload.CycleGraph(4, 6),
		"single": {{Src: 1, Dst: 2}},
		"self":   {{Src: 3, Dst: 3}, {Src: 1, Dst: 2}},
	} {
		t.Run(name, func(t *testing.T) {
			got, err := WCC(scope(t), edges, 1000)
			if err != nil {
				t.Fatal(err)
			}
			want := workload.ExpectedWCC(edges)
			// Self-loop-only nodes never seed in the dataflow version;
			// compare nodes present in both.
			for n, wc := range want {
				gc, ok := got[n]
				if !ok {
					// A node appearing only in self-loops has no label.
					if n == 3 {
						continue
					}
					t.Fatalf("node %d missing", n)
				}
				if gc != wc {
					t.Fatalf("node %d: got component %d, want %d", n, gc, wc)
				}
			}
		})
	}
}

func TestWCCIncrementalAcrossEpochs(t *testing.T) {
	s := scope(t)
	in, edges := lib.NewInput[workload.Edge](s, "edges", EdgeCodec())
	labels := BuildWCC(s, edges, 1000)
	col := lib.Collect(labels)
	if err := s.C.Start(); err != nil {
		t.Fatal(err)
	}
	// Epoch 0: two separate components {1,2} and {5,6}.
	in.Send(workload.Edge{Src: 1, Dst: 2}, workload.Edge{Src: 5, Dst: 6})
	in.Advance()
	col.WaitFor(0)
	final := map[int64]int64{}
	apply := func(e int64) {
		for _, p := range col.Epoch(e) {
			if cur, ok := final[p.Key]; !ok || p.Val < cur {
				final[p.Key] = p.Val
			}
		}
	}
	apply(0)
	if final[2] != 1 || final[6] != 5 {
		t.Fatalf("epoch 0 components: %v", final)
	}
	// Epoch 1: bridge the components; only improvements flow.
	in.Send(workload.Edge{Src: 2, Dst: 5})
	in.Advance()
	col.WaitFor(1)
	apply(1)
	if final[5] != 1 || final[6] != 1 || final[2] != 1 {
		t.Fatalf("epoch 1 components: %v", final)
	}
	in.Close()
	if err := s.C.Join(); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankMatchesSequential(t *testing.T) {
	const nodes = 50
	edges := workload.PowerLawGraph(7, nodes, 300, 1.4)
	for _, combiner := range []bool{false, true} {
		prCfg := PageRankConfig{Nodes: nodes, Iters: 10, Damping: 0.85, Combiner: combiner}
		got, err := PageRank(scope(t), edges, prCfg)
		if err != nil {
			t.Fatal(err)
		}
		want := workload.ExpectedPageRank(edges, nodes, 10, 0.85)
		present := make(map[int64]struct{})
		for _, e := range edges {
			present[e.Src] = struct{}{}
			present[e.Dst] = struct{}{}
		}
		for n := range present {
			if math.Abs(got[n]-want[n]) > 1e-9 {
				t.Fatalf("combiner=%v node %d: got %.12f want %.12f", combiner, n, got[n], want[n])
			}
		}
	}
}

func TestSCCMatchesTarjan(t *testing.T) {
	for name, edges := range map[string][]workload.Edge{
		"two cycles + bridge": append(workload.CycleGraph(2, 4), workload.Edge{Src: 0, Dst: 4}),
		"dag":                 {{Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 1, Dst: 3}},
		"nested":              {{Src: 1, Dst: 2}, {Src: 2, Dst: 1}, {Src: 2, Dst: 3}, {Src: 3, Dst: 4}, {Src: 4, Dst: 3}},
		"random":              workload.RandomGraph(3, 30, 60),
	} {
		t.Run(name, func(t *testing.T) {
			got, err := SCC(cfg(), edges, 1000)
			if err != nil {
				t.Fatal(err)
			}
			want := TarjanSCC(edges)
			if len(got) != len(want) {
				t.Fatalf("got %d nodes, want %d", len(got), len(want))
			}
			for n, wc := range want {
				if got[n] != wc {
					t.Fatalf("node %d: got %d want %d\n got: %v\nwant: %v", n, got[n], wc, got, want)
				}
			}
		})
	}
}

func TestASPMatchesBFS(t *testing.T) {
	edges := workload.RandomGraph(11, 60, 150)
	got, err := ASP(scope(t), edges, 5, 99, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Recover the sampled sources from the result keys.
	srcSet := map[int64]struct{}{}
	for k := range got {
		srcSet[k.Src] = struct{}{}
	}
	var sources []int64
	for s := range srcSet {
		sources = append(sources, s)
	}
	if len(sources) != 5 {
		t.Fatalf("sources = %v", sources)
	}
	want := BFSDistances(edges, sources)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for k, wd := range want {
		if got[k] != wd {
			t.Fatalf("%v: got %d want %d", k, got[k], wd)
		}
	}
}

func TestTarjanSCCSmall(t *testing.T) {
	edges := []workload.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 1}, {Src: 2, Dst: 3}}
	got := TarjanSCC(edges)
	if got[1] != 1 || got[2] != 1 || got[3] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestTarjanSCCDeepChainNoOverflow(t *testing.T) {
	got := TarjanSCC(workload.ChainGraph(1, 50000))
	if len(got) != 50000 {
		t.Fatalf("nodes = %d", len(got))
	}
}

func TestBFSDistances(t *testing.T) {
	edges := []workload.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	got := BFSDistances(edges, []int64{0})
	if got[SrcNode{0, 0}] != 0 || got[SrcNode{0, 1}] != 1 || got[SrcNode{0, 2}] != 2 {
		t.Fatalf("got %v", got)
	}
}
