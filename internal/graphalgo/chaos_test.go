package graphalgo

import (
	"math"
	"testing"
	"time"

	"naiad/internal/lib"
	"naiad/internal/testutil"
	"naiad/internal/transport"
	"naiad/internal/workload"
)

// chaosSchedules are the fault schedules the iterative algorithms must
// survive with output-equivalent results: loops stress the progress
// protocol far harder than the counter pipeline because every iteration's
// notifications cross the (now hostile) network.
func chaosSchedules(seed int64) map[string]transport.ChaosConfig {
	return map[string]transport.ChaosConfig{
		"latency-jitter": {Seed: seed,
			Default: transport.Fault{Latency: time.Millisecond, Jitter: 2 * time.Millisecond}},
		"straggler-link": {Seed: seed,
			Links: map[transport.Link]transport.Fault{
				{From: 1, To: 0}: {Latency: 15 * time.Millisecond},
			}},
		"throttle": {Seed: seed,
			Default: transport.Fault{BytesPerSecond: 100_000}},
		"partition-heal": {Seed: seed,
			Partition: &transport.Partition{
				Groups: [][]int{{0}, {1}}, Start: 0, Duration: 150 * time.Millisecond,
			}},
	}
}

func chaosScope(t *testing.T, ch transport.ChaosConfig) *lib.Scope {
	t.Helper()
	c := cfg()
	c.Transport = transport.NewChaos(transport.NewMem(c.Processes), ch)
	c.SafetyChecks = true
	c.Watchdog = 30 * time.Second
	s, err := lib.NewScope(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWCCUnderChaos: connected components under every fault schedule must
// exactly match the union-find reference — iterative label propagation
// through a loop context with delayed, throttled, and partitioned links.
func TestWCCUnderChaos(t *testing.T) {
	seed := testutil.Seed(t)
	edges := workload.RandomGraph(seed, 60, 120)
	want := workload.ExpectedWCC(edges)
	for name, ch := range chaosSchedules(seed) {
		t.Run(name, func(t *testing.T) {
			got, err := WCC(chaosScope(t, ch), edges, 1000)
			if err != nil {
				t.Fatalf("WCC under chaos failed: %v", err)
			}
			for n, wc := range want {
				if got[n] != wc {
					t.Fatalf("node %d: component %d, want %d", n, got[n], wc)
				}
			}
		})
	}
}

// TestPageRankUnderChaos: power iteration under chaos must match the
// sequential reference to floating-point tolerance — message loss or
// duplication anywhere would show up as rank mass drift.
func TestPageRankUnderChaos(t *testing.T) {
	seed := testutil.Seed(t)
	const nodes = 30
	edges := workload.PowerLawGraph(seed, nodes, 90, 1.4)
	want := workload.ExpectedPageRank(edges, nodes, 8, 0.85)
	for name, ch := range chaosSchedules(seed) {
		t.Run(name, func(t *testing.T) {
			got, err := PageRank(chaosScope(t, ch),
				edges, PageRankConfig{Nodes: nodes, Iters: 8, Damping: 0.85, Combiner: true})
			if err != nil {
				t.Fatalf("PageRank under chaos failed: %v", err)
			}
			var dist float64
			for n := int64(0); n < nodes; n++ {
				dist += math.Abs(got[n] - want[n])
			}
			if dist > 1e-9 {
				t.Fatalf("rank drift under chaos: L1 distance %g", dist)
			}
		})
	}
}
