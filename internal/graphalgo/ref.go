package graphalgo

import (
	"naiad/internal/workload"
)

// TarjanSCC computes strongly connected components sequentially, as the
// validation reference for SCC. The returned map assigns every node the
// minimum node id in its component. Iterative (explicit stack) so deep
// graphs cannot overflow the goroutine stack.
func TarjanSCC(edges []workload.Edge) map[int64]int64 {
	adj := make(map[int64][]int64)
	nodes := make(map[int64]struct{})
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		nodes[e.Src] = struct{}{}
		nodes[e.Dst] = struct{}{}
	}
	index := make(map[int64]int)
	low := make(map[int64]int)
	onStack := make(map[int64]bool)
	var stack []int64
	comp := make(map[int64]int64)
	next := 0

	type frame struct {
		node int64
		edge int
	}
	for start := range nodes {
		if _, seen := index[start]; seen {
			continue
		}
		call := []frame{{node: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.edge < len(adj[f.node]) {
				child := adj[f.node][f.edge]
				f.edge++
				if _, seen := index[child]; !seen {
					index[child] = next
					low[child] = next
					next++
					stack = append(stack, child)
					onStack[child] = true
					call = append(call, frame{node: child})
				} else if onStack[child] {
					if index[child] < low[f.node] {
						low[f.node] = index[child]
					}
				}
				continue
			}
			// Post-order: pop the frame, fold lowlink into the parent.
			n := f.node
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].node
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
			if low[n] == index[n] {
				// Root of an SCC: pop the component and label with min id.
				var members []int64
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					members = append(members, m)
					if m == n {
						break
					}
				}
				root := members[0]
				for _, m := range members {
					if m < root {
						root = m
					}
				}
				for _, m := range members {
					comp[m] = root
				}
			}
		}
	}
	return comp
}

// BFSDistances computes undirected BFS distances from each source, as the
// validation reference for ASP.
func BFSDistances(edges []workload.Edge, sources []int64) map[SrcNode]int64 {
	adj := make(map[int64][]int64)
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	out := make(map[SrcNode]int64)
	for _, src := range sources {
		dist := map[int64]int64{src: 0}
		queue := []int64{src}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, m := range adj[n] {
				if _, seen := dist[m]; !seen {
					dist[m] = dist[n] + 1
					queue = append(queue, m)
				}
			}
		}
		for n, d := range dist {
			out[SrcNode{Src: src, Node: n}] = d
		}
	}
	return out
}
