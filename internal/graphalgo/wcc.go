// Package graphalgo implements the graph computations of the paper's
// evaluation (§6.1): weakly connected components, PageRank in several
// layerings, strongly connected components, and approximate shortest
// paths — together with sequential references used to validate them.
package graphalgo

import (
	"naiad/internal/codec"
	"naiad/internal/lib"
	"naiad/internal/workload"
)

// EdgeCodec is the fast binary codec for workload.Edge records.
func EdgeCodec() codec.Codec {
	return codec.New(
		func(e *codec.Encoder, v workload.Edge) { e.PutInt64(v.Src); e.PutInt64(v.Dst) },
		func(d *codec.Decoder) workload.Edge { return workload.Edge{Src: d.Int64(), Dst: d.Int64()} },
	)
}

// PairCodec is the fast binary codec for Pair[int64, int64] records.
func PairCodec() codec.Codec {
	return codec.New(
		func(e *codec.Encoder, v lib.Pair[int64, int64]) { e.PutInt64(v.Key); e.PutInt64(v.Val) },
		func(d *codec.Decoder) lib.Pair[int64, int64] {
			return lib.Pair[int64, int64]{Key: d.Int64(), Val: d.Int64()}
		},
	)
}

// BuildWCC wires the label-propagation weakly-connected-components dataflow
// into a scope: every node's label converges to the minimum node id in its
// (undirected) component. The computation is incremental across epochs
// because min-label is monotone under edge additions — feeding more edges
// in later epochs emits only label improvements (§6.4's incremental
// connected components). The returned stream carries label improvements;
// the final assignment for an epoch is the per-node minimum across all
// emissions at or before it.
func BuildWCC(s *lib.Scope, edges *lib.Stream[workload.Edge], maxIters int64) *lib.Stream[lib.Pair[int64, int64]] {
	// Undirect the edges and key them by source.
	both := lib.SelectMany(edges, func(e workload.Edge) []lib.Pair[int64, int64] {
		if e.Src == e.Dst {
			return nil
		}
		return []lib.Pair[int64, int64]{lib.KV(e.Src, e.Dst), lib.KV(e.Dst, e.Src)}
	}, PairCodec())

	// Every endpoint seeds itself with its own id as label.
	seeds := lib.SelectMany(edges, func(e workload.Edge) []lib.Pair[int64, int64] {
		return []lib.Pair[int64, int64]{lib.KV(e.Src, e.Src), lib.KV(e.Dst, e.Dst)}
	}, PairCodec())

	edgesIn := lib.EnterLoop(both, 1)
	improvements := lib.Iterate(seeds, maxIters, func(inner *lib.Stream[lib.Pair[int64, int64]]) *lib.Stream[lib.Pair[int64, int64]] {
		// Keep only label improvements; propose them to neighbors.
		best := lib.AggregateMonotonic(inner, func(cand, inc int64) bool { return cand < inc })
		return lib.Join(best, edgesIn, func(_ int64, label, neighbor int64) lib.Pair[int64, int64] {
			return lib.KV(neighbor, label)
		}, PairCodec())
	})
	// The loop feeds proposals back; what leaves the loop are the raw
	// proposals. Reduce them (plus the self-seeds) to per-node minima with
	// one more monotonic aggregate outside the loop.
	all := lib.Concat(improvements, seeds)
	return lib.AggregateMonotonic(all, func(cand, inc int64) bool { return cand < inc })
}

// WCC runs weakly connected components to convergence on one edge set and
// returns each node's component (the minimum node id in it).
func WCC(s *lib.Scope, edgeList []workload.Edge, maxIters int64) (map[int64]int64, error) {
	in, edges := lib.NewInput[workload.Edge](s, "edges", EdgeCodec())
	labels := BuildWCC(s, edges, maxIters)
	col := lib.Collect(labels)
	if err := s.C.Start(); err != nil {
		return nil, err
	}
	in.Send(edgeList...)
	in.Close()
	if err := s.C.Join(); err != nil {
		return nil, err
	}
	out := make(map[int64]int64)
	for _, p := range col.All() {
		if cur, ok := out[p.Key]; !ok || p.Val < cur {
			out[p.Key] = p.Val
		}
	}
	return out, nil
}
