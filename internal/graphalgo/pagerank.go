package graphalgo

import (
	"sort"

	"naiad/internal/codec"
	"naiad/internal/graph"
	"naiad/internal/lib"
	"naiad/internal/runtime"
	ts "naiad/internal/timestamp"
	"naiad/internal/workload"
)

// rankCodec serializes Pair[int64, float64] contributions.
func rankCodec() codec.Codec {
	return codec.New(
		func(e *codec.Encoder, v lib.Pair[int64, float64]) { e.PutInt64(v.Key); e.PutFloat64(v.Val) },
		func(d *codec.Decoder) lib.Pair[int64, float64] {
			return lib.Pair[int64, float64]{Key: d.Int64(), Val: d.Float64()}
		},
	)
}

// prVertex is the "Naiad Vertex" PageRank implementation of §6.1: a custom
// low-level vertex (the paper's is 30 lines) that holds each node's
// adjacency and rank in memory across iterations. Input 0 carries the
// adjacency (entered into the loop at iteration 0); input 1 carries rank
// contributions. Iteration 0 scatters the initial ranks; iteration i
// computes rank_i = (1-d)/N + d·Σ contributions and scatters; the final
// iteration emits (node, rank) on port 1.
type prVertex struct {
	ctx     *runtime.Context
	n       float64
	damping float64
	iters   int64

	adj   map[int64][]int64
	accum map[ts.Timestamp]map[int64]float64
	ranks map[int64]float64
}

func (v *prVertex) OnRecv(input int, msg runtime.Message, t ts.Timestamp) {
	if v.accum[t] == nil {
		v.accum[t] = make(map[int64]float64)
		v.ctx.NotifyAt(t)
	}
	switch input {
	case 0:
		e := msg.(workload.Edge)
		v.adj[e.Src] = append(v.adj[e.Src], e.Dst)
	case 1:
		p := msg.(lib.Pair[int64, float64])
		v.accum[t][p.Key] += p.Val
	}
}

func (v *prVertex) OnNotify(t ts.Timestamp) {
	acc := v.accum[t]
	delete(v.accum, t)
	iter := t.Inner()
	base := (1 - v.damping) / v.n
	switch {
	case iter == 0:
		// Scatter the uniform initial ranks.
		for node := range v.adj {
			v.ranks[node] = 1 / v.n
		}
		for node := range acc {
			if _, ok := v.ranks[node]; !ok {
				v.ranks[node] = 1 / v.n
			}
		}
	default:
		// Nodes with in-edges take base + damped contributions; nodes
		// without fall back to the teleport mass.
		for node := range v.ranks {
			v.ranks[node] = base
		}
		for node, c := range acc {
			v.ranks[node] = base + v.damping*c
		}
	}
	if iter == v.iters {
		for node, r := range v.ranks {
			v.ctx.SendBy(1, lib.Pair[int64, float64]{Key: node, Val: r}, t)
		}
		return
	}
	// Scatter rank/degree to each out-neighbor for the next iteration.
	nodes := make([]int64, 0, len(v.ranks))
	for node := range v.ranks {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, node := range nodes {
		outs := v.adj[node]
		if len(outs) == 0 {
			continue
		}
		share := v.ranks[node] / float64(len(outs))
		for _, dst := range outs {
			v.ctx.SendBy(0, lib.Pair[int64, float64]{Key: dst, Val: share}, t)
		}
	}
}

// PageRankConfig parameterizes the dataflow PageRank implementations.
type PageRankConfig struct {
	Nodes    int64   // total node count (for the teleport term)
	Iters    int64   // power iterations to run
	Damping  float64 // damping factor, typically 0.85
	Combiner bool    // pre-aggregate contributions before the exchange
}

// BuildPageRank wires the custom-vertex PageRank dataflow. With
// cfg.Combiner set it is the "Naiad Edge" layering of Figure 7a: worker-
// local combiners sum contributions per destination before the exchange,
// standing in for the space-filling-curve edge partitioning whose purpose
// is exactly that reduction in exchanged data; without it, the "Naiad
// Vertex" layering exchanges one contribution per edge.
func BuildPageRank(s *lib.Scope, edges *lib.Stream[workload.Edge], cfg PageRankConfig) *lib.Stream[lib.Pair[int64, float64]] {
	c := s.C
	edgesIn := lib.EnterLoop(edges, 1)

	// The pr stage lives inside the loop with two inputs and two outputs:
	// port 0 loops contributions through the feedback stage, port 1 exits.
	pr := c.AddStage("pagerank", graph.RoleNormal, 1, func(ctx *runtime.Context) runtime.Vertex {
		return &prVertex{
			ctx: ctx, n: float64(cfg.Nodes), damping: cfg.Damping, iters: cfg.Iters,
			adj:   make(map[int64][]int64),
			accum: make(map[ts.Timestamp]map[int64]float64),
			ranks: make(map[int64]float64),
		}
	}, runtime.Ports(2))
	fb := c.AddStage("pr-feedback", graph.RoleFeedback, 1, nil, runtime.MaxIterations(cfg.Iters+1))
	// Adjacency is partitioned by source: each node's home vertex scatters.
	c.Connect(edgesIn.Stage(), 0, pr, func(m runtime.Message) uint64 {
		return lib.Hash(m.(workload.Edge).Src)
	}, EdgeCodec())

	contrib := lib.StreamOf[lib.Pair[int64, float64]](s, fb, 0, rankCodec(), 1)
	toVertex := contrib
	if cfg.Combiner {
		toVertex = combineContributions(s, contrib)
	}
	// Contributions are partitioned by destination node.
	c.Connect(toVertex.Stage(), 0, pr, func(m runtime.Message) uint64 {
		return lib.Hash(m.(lib.Pair[int64, float64]).Key)
	}, rankCodec())
	// Close the loop: the pr stage's port 0 feeds the feedback stage
	// locally (it is already partitioned correctly for the next exchange).
	c.Connect(pr, 0, fb, nil, rankCodec())

	finals := lib.StreamOf[lib.Pair[int64, float64]](s, pr, 1, rankCodec(), 1)
	return lib.LeaveLoop(finals)
}

// combineContributions sums contributions per destination within each
// worker before they are exchanged, one iteration at a time.
func combineContributions(s *lib.Scope, in *lib.Stream[lib.Pair[int64, float64]]) *lib.Stream[lib.Pair[int64, float64]] {
	return lib.UnaryBuffer[lib.Pair[int64, float64], lib.Pair[int64, float64]](in, "combiner", nil,
		func(_ ts.Timestamp, recs []lib.Pair[int64, float64], emit func(lib.Pair[int64, float64])) {
			sums := make(map[int64]float64, len(recs))
			var order []int64
			for _, p := range recs {
				if _, ok := sums[p.Key]; !ok {
					order = append(order, p.Key)
				}
				sums[p.Key] += p.Val
			}
			for _, k := range order {
				emit(lib.Pair[int64, float64]{Key: k, Val: sums[k]})
			}
		}, rankCodec())
}

// PageRank runs the dataflow PageRank to completion and returns the final
// rank of every node with at least one edge.
func PageRank(s *lib.Scope, edgeList []workload.Edge, cfg PageRankConfig) (map[int64]float64, error) {
	in, edges := lib.NewInput[workload.Edge](s, "edges", EdgeCodec())
	finals := BuildPageRank(s, edges, cfg)
	col := lib.Collect(finals)
	if err := s.C.Start(); err != nil {
		return nil, err
	}
	in.Send(edgeList...)
	in.Close()
	if err := s.C.Join(); err != nil {
		return nil, err
	}
	out := make(map[int64]float64)
	for _, p := range col.All() {
		out[p.Key] = p.Val
	}
	return out, nil
}
