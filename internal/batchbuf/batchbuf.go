// Package batchbuf provides pooled, reference-counted record batches — the
// unit the data plane moves instead of individually boxed records. A Batch
// wraps a Column: either a typed column (Col[T], a plain []T that operators
// process without boxing) or a boxed column ([]any, the compatibility form
// for untyped paths). Batches recycle through sync.Pool arenas keyed by
// record type, so the steady-state record path allocates nothing.
//
// # Ownership rules
//
// Batches are explicitly owned; the rules are small and checkable:
//
//   - A batch obtained from a pool (Pool.Get, PoolFor[T]().Get, GetBoxed)
//     starts with one reference, owned by the caller.
//   - Passing a batch to a consuming API — Context.SendBatchBy,
//     Input.SendBatch, a mailbox handoff — transfers that reference. The
//     caller must not touch the batch afterwards unless it called Retain
//     first.
//   - OnRecvBatch callbacks borrow the batch for the duration of the call:
//     the runtime still owns it and releases it after the callback returns.
//     A vertex that forwards or stores the batch past the callback must
//     Retain it (SendBatchBy then consumes that extra reference).
//   - Release drops one reference; at zero the batch's column is reset and
//     returned to its home pool. Any slice previously obtained from the
//     batch (Col().Slice(), a Col[T].Data view) is use-after-recycle once
//     the last reference is gone — the backing array will be overwritten by
//     an unrelated batch.
//   - Dropping a batch without Release (an abort path, a closed mailbox) is
//     safe: the batch is garbage-collected instead of recycled. Only
//     double-Release and use-after-Release are bugs.
//
// The same discipline covers the frame byte pool (GetBytes/PutBytes):
// PutBytes at most once per buffer, never use a buffer after PutBytes.
package batchbuf

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// Column is the storage of a batch: a uniform sequence of records, either
// typed ([]T) or boxed ([]any).
type Column interface {
	// Len returns the number of records.
	Len() int
	// Record returns record i, boxed. Typed columns box on each call; batch
	// consumers should type-assert Slice once instead.
	Record(i int) any
	// Slice returns the backing slice (a []T or []any) for a single
	// type-assertion per batch. The slice is valid only while the batch
	// holds a reference.
	Slice() any
	// Append adds a boxed record, reporting false when the record's dynamic
	// type does not match a typed column.
	Append(v any) bool
	// AppendIndex copies record i of src without boxing when both columns
	// share a type, boxing otherwise. It reports false only when the boxed
	// value cannot be stored (typed column, foreign type).
	AppendIndex(src Column, i int) bool
	// reset empties the column for reuse, keeping capacity.
	reset()
}

// Batch is a reference-counted batch of records backed by a Column.
type Batch struct {
	refs atomic.Int32
	col  Column
	home pool // nil for unpooled batches
}

// pool is the recycle target of a batch.
type pool interface {
	put(b *Batch)
	newLike(capacity int) *Batch
}

// Len returns the number of records in the batch.
func (b *Batch) Len() int { return b.col.Len() }

// Record returns record i, boxed.
func (b *Batch) Record(i int) any { return b.col.Record(i) }

// Col returns the batch's column.
func (b *Batch) Col() Column { return b.col }

// Retain adds a reference and returns the batch, for chaining into a
// consuming call: ctx.SendBatchBy(0, b.Retain(), t).
func (b *Batch) Retain() *Batch {
	b.refs.Add(1)
	return b
}

// Release drops one reference; the last release resets the column and
// returns the batch to its pool. Releasing below zero panics — it means two
// owners both believed the reference was theirs.
func (b *Batch) Release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		b.col.reset()
		if b.home != nil {
			b.home.put(b)
		}
	case n < 0:
		panic("batchbuf: Release of a batch with no references (double release?)")
	}
}

// NewLike returns an empty pooled batch with the same column type as b (one
// reference, owned by the caller) — the builder used when scattering a
// batch across destinations. Unpooled batches fall back to the type-keyed
// global pool when possible, else a boxed builder.
func (b *Batch) NewLike(capacity int) *Batch {
	if b.home != nil {
		return b.home.newLike(capacity)
	}
	if c, ok := b.col.(sliceColumn); ok {
		return c.poolFor().newLike(capacity)
	}
	return GetBoxed(capacity)
}

// Append adds a boxed record to the batch, reporting false on a type
// mismatch with a typed column.
func (b *Batch) Append(v any) bool { return b.col.Append(v) }

// AppendIndex copies record i of src into the batch, without boxing when
// the column types match.
func (b *Batch) AppendIndex(src *Batch, i int) bool {
	return b.col.AppendIndex(src.col, i)
}

// AppendBatch bulk-appends every record of src, without boxing when the
// column types match. It reports false only when a typed destination cannot
// store src's records.
func (b *Batch) AppendBatch(src *Batch) bool {
	if dst, ok := b.col.(bulkAppender); ok && dst.appendAll(src.col) {
		return true
	}
	for i, n := 0, src.Len(); i < n; i++ {
		if !b.col.AppendIndex(src.col, i) {
			return false
		}
	}
	return true
}

// sliceColumn lets an unpooled typed column find the global pool for its
// type (NewLike on a Wrap/Of batch).
type sliceColumn interface {
	poolFor() pool
}

// bulkAppender is the no-reflection bulk copy between same-typed columns.
type bulkAppender interface {
	appendAll(src Column) bool
}

// Col is a typed column: a plain []T operators process without boxing.
type Col[T any] struct {
	Data []T
}

// Len returns the number of records.
func (c *Col[T]) Len() int { return len(c.Data) }

// Record returns record i, boxed.
func (c *Col[T]) Record(i int) any { return c.Data[i] }

// Slice returns the []T backing slice.
func (c *Col[T]) Slice() any { return c.Data }

// Append adds a boxed record, reporting false when it is not a T.
func (c *Col[T]) Append(v any) bool {
	t, ok := v.(T)
	if !ok {
		return false
	}
	c.Data = append(c.Data, t)
	return true
}

// AppendIndex copies record i of src. Same-typed columns copy without
// boxing; otherwise the record is boxed through Record and type-asserted.
func (c *Col[T]) AppendIndex(src Column, i int) bool {
	if s, ok := src.(*Col[T]); ok {
		c.Data = append(c.Data, s.Data[i])
		return true
	}
	return c.Append(src.Record(i))
}

func (c *Col[T]) appendAll(src Column) bool {
	s, ok := src.(*Col[T])
	if !ok {
		return false
	}
	c.Data = append(c.Data, s.Data...)
	return true
}

func (c *Col[T]) reset() { clear(c.Data); c.Data = c.Data[:0] }

func (c *Col[T]) poolFor() pool { return PoolFor[T]() }

// anyCol is the boxed column: []any, accepting records of any type.
type anyCol struct {
	data []any
}

func (c *anyCol) Len() int          { return len(c.data) }
func (c *anyCol) Record(i int) any  { return c.data[i] }
func (c *anyCol) Slice() any        { return c.data }
func (c *anyCol) Append(v any) bool { c.data = append(c.data, v); return true }

func (c *anyCol) AppendIndex(src Column, i int) bool {
	c.data = append(c.data, src.Record(i))
	return true
}

func (c *anyCol) appendAll(src Column) bool {
	if s, ok := src.(*anyCol); ok {
		c.data = append(c.data, s.data...)
		return true
	}
	return false
}

func (c *anyCol) reset() { clear(c.data); c.data = c.data[:0] }

// Pool is a typed batch arena. The zero value is not usable; construct with
// NewPool or use the process-wide type-keyed pools via PoolFor.
type Pool[T any] struct {
	p sync.Pool
}

// NewPool returns a fresh typed batch pool.
func NewPool[T any]() *Pool[T] {
	pl := &Pool[T]{}
	pl.p.New = func() any {
		return &Batch{col: &Col[T]{}, home: pl}
	}
	return pl
}

// Get returns an empty typed batch with one reference, growing its column
// capacity to at least capacity.
func (p *Pool[T]) Get(capacity int) (*Batch, *Col[T]) {
	b := p.p.Get().(*Batch)
	b.refs.Store(1)
	col := b.col.(*Col[T])
	if cap(col.Data) < capacity {
		col.Data = make([]T, 0, capacity)
	}
	return b, col
}

func (p *Pool[T]) put(b *Batch) { p.p.Put(b) }

func (p *Pool[T]) newLike(capacity int) *Batch {
	b, _ := p.Get(capacity)
	return b
}

// typePools maps reflect.Type of T to its *Pool[T], so every producer of a
// record type shares one arena.
var typePools sync.Map

// PoolFor returns the process-wide pool for record type T.
func PoolFor[T any]() *Pool[T] {
	key := reflect.TypeFor[T]()
	if p, ok := typePools.Load(key); ok {
		return p.(*Pool[T])
	}
	p, _ := typePools.LoadOrStore(key, NewPool[T]())
	return p.(*Pool[T])
}

// boxedPool is the arena of boxed batches used by untyped paths.
var boxedPool = newBoxedPool()

type anyPool struct {
	p sync.Pool
}

func newBoxedPool() *anyPool {
	pl := &anyPool{}
	pl.p.New = func() any {
		return &Batch{col: &anyCol{}, home: pl}
	}
	return pl
}

func (p *anyPool) put(b *Batch) { p.p.Put(b) }

func (p *anyPool) newLike(capacity int) *Batch { return GetBoxed(capacity) }

// GetBoxed returns an empty boxed batch with one reference from the global
// boxed arena.
func GetBoxed(capacity int) *Batch {
	b := boxedPool.p.Get().(*Batch)
	b.refs.Store(1)
	col := b.col.(*anyCol)
	if cap(col.data) < capacity {
		col.data = make([]any, 0, capacity)
	}
	return b
}

// One returns a pooled boxed batch holding a single record.
func One(v any) *Batch {
	b := GetBoxed(1)
	b.col.(*anyCol).data = append(b.col.(*anyCol).data, v)
	return b
}

// Wrap adopts a boxed record slice as an unpooled batch (one reference;
// Release drops it for garbage collection instead of recycling). The batch
// owns the slice.
func Wrap(records []any) *Batch {
	b := &Batch{col: &anyCol{data: records}}
	b.refs.Store(1)
	return b
}

// Of adopts a typed record slice as an unpooled batch (one reference). The
// batch owns the slice.
func Of[T any](records []T) *Batch {
	b := &Batch{col: &Col[T]{Data: records}}
	b.refs.Store(1)
	return b
}

// Byte-buffer arena: size-classed pooled frame buffers for the transport
// receive path. GetBytes returns a zeroed-length buffer with capacity ≥ n;
// PutBytes recycles a buffer whose capacity matches a size class exactly
// and silently drops any other (so foreign slices are safe to offer).
const (
	minBytesClass = 8  // 1<<8 = 256 B
	maxBytesClass = 20 // 1<<20 = 1 MiB
)

var bytePools [maxBytesClass - minBytesClass + 1]sync.Pool

func bytesClass(n int) int {
	c := minBytesClass
	for n > 1<<c {
		c++
	}
	return c
}

// GetBytes returns a length-n buffer from the arena (capacity is the
// enclosing power-of-two size class). Requests beyond the largest class
// fall back to a plain allocation.
func GetBytes(n int) []byte {
	if n > 1<<maxBytesClass {
		return make([]byte, n)
	}
	c := bytesClass(n)
	if v := bytePools[c-minBytesClass].Get(); v != nil {
		return v.([]byte)[:n]
	}
	return make([]byte, n, 1<<c)
}

// PutBytes recycles a buffer previously returned by GetBytes. Buffers whose
// capacity is not an exact size class are dropped, so callers may offer any
// slice without tracking provenance. The caller must not use the buffer —
// or any view of it — after PutBytes.
func PutBytes(b []byte) {
	c := cap(b)
	if c < 1<<minBytesClass || c > 1<<maxBytesClass || c&(c-1) != 0 {
		return
	}
	cls := bytesClass(c)
	bytePools[cls-minBytesClass].Put(b[:0:c])
}
