package batchbuf

import (
	"testing"
)

func TestTypedPoolRecycles(t *testing.T) {
	p := NewPool[int64]()
	b, col := p.Get(8)
	col.Data = append(col.Data, 1, 2, 3)
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if got := b.Record(1).(int64); got != 2 {
		t.Fatalf("Record(1) = %d, want 2", got)
	}
	b.Release()
	b2, col2 := p.Get(4)
	if b2 != b {
		t.Fatalf("pool did not recycle the released batch")
	}
	if col2.Len() != 0 {
		t.Fatalf("recycled batch not reset: %d records", col2.Len())
	}
}

func TestRetainRelease(t *testing.T) {
	b, col := PoolFor[string]().Get(4)
	col.Data = append(col.Data, "a")
	b.Retain()
	b.Release()
	if b.Len() != 1 {
		t.Fatalf("batch reset while a reference remained")
	}
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("double release did not panic")
		}
	}()
	b.Release()
}

func TestPoolForSharesArena(t *testing.T) {
	if PoolFor[int64]() != PoolFor[int64]() {
		t.Fatalf("PoolFor returned distinct pools for one type")
	}
}

func TestAppendIndexTypedNoBox(t *testing.T) {
	src := Of([]int64{10, 20, 30})
	dst := src.NewLike(4)
	if !dst.AppendIndex(src, 2) || !dst.AppendIndex(src, 0) {
		t.Fatalf("typed AppendIndex failed")
	}
	got := dst.Col().Slice().([]int64)
	if len(got) != 2 || got[0] != 30 || got[1] != 10 {
		t.Fatalf("scattered = %v, want [30 10]", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst.Col().reset()
		dst.AppendIndex(src, 1)
	})
	if allocs != 0 {
		t.Fatalf("typed AppendIndex allocates %.1f/op, want 0", allocs)
	}
}

func TestBoxedFallbacks(t *testing.T) {
	bx := GetBoxed(2)
	if !bx.Append(int64(7)) || !bx.Append("mixed") {
		t.Fatalf("boxed Append rejected a record")
	}
	typed := Of([]int64{1})
	if typed.Append("not an int64") {
		t.Fatalf("typed Append accepted a foreign type")
	}
	if !bx.AppendIndex(typed, 0) {
		t.Fatalf("boxed AppendIndex failed")
	}
	if bx.Len() != 3 || bx.Record(2).(int64) != 1 {
		t.Fatalf("boxed column contents wrong: %v", bx.Col().Slice())
	}
	bx.Release()
}

func TestAppendBatchBulk(t *testing.T) {
	src := Of([]int64{1, 2, 3})
	dst := src.NewLike(8)
	if !dst.AppendBatch(src) || !dst.AppendBatch(src) {
		t.Fatalf("AppendBatch failed")
	}
	got := dst.Col().Slice().([]int64)
	if len(got) != 6 || got[5] != 3 {
		t.Fatalf("AppendBatch = %v", got)
	}
	// Boxed destination accepts a typed source (boxing).
	bx := GetBoxed(4)
	if !bx.AppendBatch(src) || bx.Len() != 3 {
		t.Fatalf("boxed AppendBatch failed")
	}
	// Typed destination rejects a foreign-typed source.
	other := Of([]string{"x"})
	if dst.AppendBatch(other) {
		t.Fatalf("typed AppendBatch accepted foreign records")
	}
}

func TestWrapAndOneOwnership(t *testing.T) {
	w := Wrap([]any{int64(1), int64(2)})
	if w.Len() != 2 {
		t.Fatalf("Wrap lost records")
	}
	w.Release() // unpooled: just drops to GC

	one := One(int64(42))
	if one.Len() != 1 || one.Record(0).(int64) != 42 {
		t.Fatalf("One built %v", one.Col().Slice())
	}
	one.Release()
}

func TestNewLikeOnUnpooledBatch(t *testing.T) {
	src := Of([]int64{5})
	bld := src.NewLike(16)
	if _, ok := bld.Col().(*Col[int64]); !ok {
		t.Fatalf("NewLike on an Of-batch did not produce a typed builder")
	}
	bld.Release()
}

func TestByteArena(t *testing.T) {
	b := GetBytes(300)
	if len(b) != 300 || cap(b) != 512 {
		t.Fatalf("GetBytes(300): len %d cap %d, want 300/512", len(b), cap(b))
	}
	PutBytes(b)
	b2 := GetBytes(400)
	if cap(b2) != 512 {
		t.Fatalf("size class not reused: cap %d", cap(b2))
	}
	// Foreign capacities are silently dropped.
	PutBytes(make([]byte, 0, 300))
	// Oversize requests fall back to plain allocation.
	huge := GetBytes(1<<20 + 1)
	if len(huge) != 1<<20+1 {
		t.Fatalf("oversize GetBytes wrong length")
	}
	PutBytes(huge)
}

func TestColReleaseClearsData(t *testing.T) {
	type rec struct{ p *int }
	x := 7
	p := NewPool[rec]()
	b, col := p.Get(2)
	col.Data = append(col.Data, rec{p: &x})
	b.Release()
	_, col2 := p.Get(1)
	if d := col2.Data[:1]; d[0].p != nil {
		t.Fatalf("release did not clear pointerful records")
	}
}
