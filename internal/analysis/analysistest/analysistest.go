// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixture source,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under testdata/src/<dir> relative to the analyzer's test.
// An expectation is a comment of the form
//
//	expr // want `regexp`
//	expr // want `re1` `re2`
//
// (double-quoted Go strings also work). Every expectation must be matched
// by a diagnostic reported on its line, and every diagnostic must be
// matched by an expectation; either mismatch fails the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"naiad/internal/analysis/framework"
)

// want is one expectation: a pattern that must match a diagnostic reported
// on its line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package from testdata/src/<dir>, applies the
// analyzer, and verifies the diagnostics against the // want comments.
func Run(t *testing.T, a *framework.Analyzer, dirs ...string) {
	t.Helper()
	root, err := framework.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var patterns []string
	for _, d := range dirs {
		abs, err := filepath.Abs(filepath.Join("testdata", "src", d))
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		patterns = append(patterns, abs)
	}
	pkgs, err := framework.NewLoader(root).Load(patterns...)
	if err != nil {
		t.Fatalf("analysistest: loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: no fixture packages under testdata/src for %v", dirs)
	}
	findings, err := framework.Run(pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	wants := collectWants(t, pkgs)
	for _, f := range findings {
		if !match(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// match consumes the first unmatched expectation on the finding's line
// whose pattern matches its message.
func match(wants []*want, f framework.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Position.Filename && w.line == f.Position.Line && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the // want comments of every fixture file.
func collectWants(t *testing.T, pkgs []*framework.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					ws, err := parseWants(c.Text, pos.Filename, pos.Line)
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					wants = append(wants, ws...)
				}
			}
		}
	}
	return wants
}

// wantPattern extracts the Go string literals following "want".
var wantPattern = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWants(comment, file string, line int) ([]*want, error) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(comment, "//")), "want ")
	if !ok {
		return nil, nil
	}
	lits := wantPattern.FindAllString(rest, -1)
	if len(lits) == 0 {
		return nil, fmt.Errorf("analysistest: want comment with no pattern")
	}
	var wants []*want
	for _, lit := range lits {
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("analysistest: bad pattern %s: %v", lit, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("analysistest: bad pattern %s: %v", lit, err)
		}
		wants = append(wants, &want{file: file, line: line, re: re})
	}
	return wants, nil
}
