// Package atomicmix flags struct fields and package-level variables that
// are accessed both through sync/atomic functions and by plain read/write
// anywhere in the program.
//
// A field accessed with atomic.LoadX in one place and a bare assignment in
// another has no synchronization at all on the plain side: the atomic
// accesses order nothing for it, the race detector only catches the
// schedules a test explores, and the failure is the PR 6 readiness-flag
// class — a worker's Start observing a half-written flag that CrashWorker
// wrote plainly. The discipline must hold program-wide, not per package:
// a field consistently atomic inside its package and poked plainly by an
// importer is exactly the cross-package shape per-package analysis misses.
// Each package pass exports, as facts, the variables it passes by address
// into sync/atomic; the Finish step sweeps every package for plain
// accesses to any of them.
//
// Not flagged: fields of the typed atomic.Int64/Uint32/Bool/... wrappers
// (the type system already forbids plain access), composite-literal keys
// (`s{flag: 1}` names the field, it does not access it), and fields only
// ever accessed plainly (mutex-guarded state is the guard's business —
// see lockhold/lockorder). Known false negatives: plain access through a
// previously taken pointer (`p := &s.n; *p = 1`) and accesses in _test.go
// files (test variants model test-only schedules).
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"naiad/internal/analysis/framework"
)

// Analyzer is the atomicmix pass.
var Analyzer = &framework.Analyzer{
	Name:      "atomicmix",
	Doc:       "flag fields accessed both through sync/atomic and by plain read/write anywhere in the program",
	Run:       run,
	Finish:    finish,
	FactTypes: []framework.Fact{&AtomicUsesFact{}},
}

// AtomicUse records one variable passed by address into sync/atomic.
type AtomicUse struct {
	Key  string // framework.ObjectKey of the field or variable
	Name string // display name, e.g. runtime.worker.ready
	Pos  token.Pos
}

// AtomicUsesFact is a package fact: every atomic use site in the package.
type AtomicUsesFact struct{ Uses []AtomicUse }

func (*AtomicUsesFact) AFact() {}

func run(pass *framework.Pass) (any, error) {
	var uses []AtomicUse
	for _, file := range pass.Files {
		if framework.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			target := atomicOperand(pass.TypesInfo, call)
			if target == nil {
				return true
			}
			obj, name := resolveVar(pass.TypesInfo, target)
			if obj == nil {
				return true
			}
			uses = append(uses, AtomicUse{
				Key:  framework.ObjectKey(pass.Fset, obj),
				Name: name,
				Pos:  target.Pos(),
			})
			return true
		})
	}
	if len(uses) > 0 {
		pass.ExportPackageFact(&AtomicUsesFact{Uses: uses})
	}
	return nil, nil
}

// atomicOperand returns the expression whose address is passed to a
// sync/atomic free function (atomic.AddInt64(&x, 1) → x), or nil.
func atomicOperand(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil // typed atomic wrappers are safe by construction
	}
	unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil
	}
	return ast.Unparen(unary.X)
}

// resolveVar resolves an expression to the struct field or variable it
// names.
func resolveVar(info *types.Info, e ast.Expr) (*types.Var, string) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return nil, ""
			}
			name := v.Name()
			if tn := namedTypeName(sel.Recv()); tn != "" {
				name = tn + "." + name
			}
			if v.Pkg() != nil {
				name = v.Pkg().Name() + "." + name
			}
			return v, name
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok { // pkg-qualified var
			return v, v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		// Bare idents can only name package-level variables here: a field
		// always appears under a SelectorExpr (handled above; counting its
		// Sel ident too would double-report).
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && !v.IsField() && !isLocal(v) {
			return v, v.Pkg().Name() + "." + v.Name()
		}
	}
	return nil, ""
}

// isLocal reports whether v is function-local (uninteresting: a local
// passed to atomic and read plainly in one frame is visible to the race
// detector and usually a loop-local accumulator).
func isLocal(v *types.Var) bool {
	return v.Pkg() == nil || (v.Parent() != nil && v.Parent() != v.Pkg().Scope())
}

func namedTypeName(t types.Type) string {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// finish sweeps every package for plain accesses to the atomically-used
// variables.
func finish(wp *framework.WholeProgram) error {
	atomicUses := make(map[string]AtomicUse) // key → first use (earliest position)
	wp.EachPackageFact(&AtomicUsesFact{}, func(_ string, fact framework.Fact) {
		for _, u := range fact.(*AtomicUsesFact).Uses {
			if prev, ok := atomicUses[u.Key]; !ok || u.Pos < prev.Pos {
				atomicUses[u.Key] = u
			}
		}
	})
	if len(atomicUses) == 0 {
		return nil
	}

	seenFile := make(map[string]bool)
	for _, pkg := range wp.Pkgs {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, file := range pkg.Files {
			name := wp.Fset.Position(file.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") || seenFile[name] {
				continue
			}
			seenFile[name] = true
			sweepFile(wp, pkg, file, atomicUses)
		}
	}
	return nil
}

// sweepFile reports plain accesses in one file.
func sweepFile(wp *framework.WholeProgram, pkg *framework.Package, file *ast.File, atomicUses map[string]AtomicUse) {
	// Pre-pass: positions that are sanctioned mentions of the variable —
	// the &x operand of an atomic call, and composite-literal keys.
	sanctioned := make(map[token.Pos]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if target := atomicOperand(pkg.TypesInfo, n); target != nil {
				sanctioned[target.Pos()] = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					sanctioned[kv.Key.Pos()] = true
				}
			}
		}
		return true
	})

	var plains []AtomicUse
	ast.Inspect(file, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.SelectorExpr, *ast.Ident:
		default:
			return true
		}
		if sanctioned[e.Pos()] {
			return false // skip the subtree: &x operands, composite keys
		}
		obj, name := resolveVar(pkg.TypesInfo, e)
		if obj == nil {
			return true
		}
		key := framework.ObjectKey(wp.Fset, obj)
		if _, ok := atomicUses[key]; !ok {
			return true
		}
		// A selector's Sel ident would double-report; only count the
		// outermost expression (the SelectorExpr itself), which is the one
		// Selections resolves.
		plains = append(plains, AtomicUse{Key: key, Name: name, Pos: e.Pos()})
		return false // don't descend into x.Sel
	})

	sort.Slice(plains, func(i, j int) bool { return plains[i].Pos < plains[j].Pos })
	for _, p := range plains {
		u := atomicUses[p.Key]
		ap := wp.Fset.Position(u.Pos)
		wp.Reportf(p.Pos, "plain (non-atomic) access of %s, which is accessed atomically (e.g. at %s:%d); every access must go through sync/atomic — mixing orders nothing and races on the plain side", p.Name, shortFile(ap.Filename), ap.Line)
	}
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
