// Package a is the atomicmix fixture: one field accessed both atomically
// and plainly (flagged), one consistently atomic (clean), one only ever
// plain under a mutex (clean — that is lockhold/lockorder's territory),
// and an exported field whose plain access lives in another package.
package a

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mixed   int64
	clean   int64
	guarded int64
	mu      sync.Mutex
}

func (c *counter) bump() {
	atomic.AddInt64(&c.mixed, 1)
	atomic.AddInt64(&c.clean, 1)
}

func (c *counter) read() int64 {
	return c.mixed // want `plain \(non-atomic\) access of a\.counter\.mixed, which is accessed atomically`
}

func (c *counter) readClean() int64 {
	return atomic.LoadInt64(&c.clean)
}

func (c *counter) bumpGuarded() {
	c.mu.Lock()
	c.guarded++
	c.mu.Unlock()
}

// Shared's Flag is stored atomically here and poked plainly by package b:
// the cross-package inconsistency only a whole-program pass can see.
type Shared struct {
	Flag uint32
}

func Arm(s *Shared) {
	atomic.StoreUint32(&s.Flag, 1)
}

// NewShared's composite-literal key is a field name, not a field access;
// it must not be flagged.
func NewShared() *Shared {
	return &Shared{Flag: 0}
}
