// Package b pokes package a's atomically-disciplined field with a plain
// write — the cross-package half of the atomicmix fixture.
package b

import a "naiad/internal/analysis/atomicmix/testdata/src/a"

func Disarm(s *a.Shared) {
	s.Flag = 0 // want `plain \(non-atomic\) access of a\.Shared\.Flag, which is accessed atomically`
}
