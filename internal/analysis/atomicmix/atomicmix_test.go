package atomicmix_test

import (
	"testing"

	"naiad/internal/analysis/analysistest"
	"naiad/internal/analysis/atomicmix"
)

// TestAtomicmix runs the two-package fixture: a mixed field, a
// consistently-atomic field, a mutex-guarded plain field (clean), a
// composite-literal key (clean), and a cross-package plain write to a
// field the defining package only ever touches atomically.
func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "a", "b")
}
