// Package vertexctx flags vertex Contexts escaping into goroutines.
//
// A runtime.Context is permanently bound to one vertex and "must only be
// used from the vertex's own callbacks" (vertex.go): OnRecv and OnNotify run
// single-threaded on the owning worker, which is why vertices need no
// internal locking and why SendBy/NotifyAt can validate times against the
// worker's callback time-stack without synchronization. A `go func` that
// captures a Context (directly, through a vertex's ctx field, or passed as
// an argument) runs off the worker thread: its SendBy races the worker's
// time-stack bookkeeping and can emit messages after the progress protocol
// has already retired the callback's pointstamp — a frontier violation the
// SafetyMonitor only catches if the race happens to strike during a test.
package vertexctx

import (
	"go/ast"
	"go/token"
	"go/types"

	"naiad/internal/analysis/framework"
)

const runtimePath = "naiad/internal/runtime"

// Analyzer is the vertexctx pass.
var Analyzer = &framework.Analyzer{
	Name: "vertexctx",
	Doc:  "flag vertex Contexts captured by or passed to goroutines, which breaks the single-threaded-worker contract",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, gs)
			return true
		})
	}
	return nil, nil
}

func checkGo(pass *framework.Pass, gs *ast.GoStmt) {
	// Context handed to the goroutine as an argument.
	for _, arg := range gs.Call.Args {
		if isContext(pass, arg) {
			pass.Reportf(arg.Pos(), "vertex Context passed to a goroutine; Contexts must only be used from the vertex's own callbacks on the worker thread")
		}
	}
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// Context captured by the goroutine body: any expression of Context
	// type whose root variable is declared outside the literal.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok || !isContext(pass, expr) {
			return true
		}
		root := rootIdent(expr)
		if root == nil {
			return true
		}
		obj := pass.TypesInfo.Uses[root]
		if obj == nil || !declaredOutside(obj, lit) {
			return true
		}
		pass.Reportf(expr.Pos(), "vertex Context captured by a goroutine (via %s); SendBy/NotifyAt off the worker thread race the callback time-stack and the progress protocol", root.Name)
		return false // don't re-flag sub-expressions of this one
	})
}

// isContext reports whether expr's type is runtime.Context or *runtime.Context.
func isContext(pass *framework.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	return ok && framework.IsNamed(tv.Type, runtimePath, "Context")
}

// rootIdent returns the identifier at the base of a selector/index/call
// chain, or nil.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj is declared outside lit's body — i.e.
// the goroutine refers to it as a captured free variable rather than one of
// its own locals or parameters.
func declaredOutside(obj types.Object, lit *ast.FuncLit) bool {
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return obj.Pos() == token.NoPos || obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}
