package vertexctx_test

import (
	"testing"

	"naiad/internal/analysis/analysistest"
	"naiad/internal/analysis/vertexctx"
)

func TestVertexctx(t *testing.T) {
	analysistest.Run(t, vertexctx.Analyzer, "a")
}
