// Package a exercises the vertexctx analyzer: vertex Contexts must not
// escape into goroutines.
package a

import rt "naiad/internal/runtime"

func leak(ctx *rt.Context, ch chan int) {
	go handle(ctx) // want `vertex Context passed to a goroutine`
	go func() {
		use(ctx) // want `vertex Context captured by a goroutine \(via ctx\)`
	}()

	// Legal: a goroutine that communicates through channels only.
	go func() {
		<-ch
	}()

	// Legal: synchronous use from the callback itself.
	use(ctx)
}

type holder struct {
	ctx *rt.Context
}

func (h *holder) leakField() {
	go func() {
		use(h.ctx) // want `vertex Context captured by a goroutine \(via h\)`
	}()
}

func use(*rt.Context)    {}
func handle(*rt.Context) {}
