package lockhold_test

import (
	"testing"

	"naiad/internal/analysis/analysistest"
	"naiad/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer, "runtime")
}

func TestLockholdSupervise(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer, "supervise")
}

func TestLockholdCapability(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer, "lib")
}
