// Package fixture exercises the lockhold analyzer on supervisor-shaped
// code. Its directory name (testdata/src/supervise) puts it in the
// analyzer's scope, standing in for naiad/internal/supervise: the
// supervisor's serial run loop exchanges commands and join results over
// channels, and its metrics/error mutexes must never be held across those
// handoffs.
package fixture

import "sync"

type supervisor struct {
	errMu    sync.Mutex
	finalErr error
	cmdCh    chan int
	joinCh   chan error
}

func (s *supervisor) badFinish(err error) {
	s.errMu.Lock()
	s.finalErr = err
	s.joinCh <- err // want `channel send while holding s.errMu`
	s.errMu.Unlock()
}

func (s *supervisor) badWaitUnderLock() {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	<-s.joinCh // want `channel receive while holding s.errMu`
}

// Legal: record the error under the lock, hand off after releasing it.
func (s *supervisor) goodFinish(err error) {
	s.errMu.Lock()
	s.finalErr = err
	s.errMu.Unlock()
	s.joinCh <- err
}

// Legal: a non-blocking poll (select with default) under the lock.
func (s *supervisor) goodPoll() bool {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	select {
	case v := <-s.cmdCh:
		return v > 0
	default:
		return false
	}
}
