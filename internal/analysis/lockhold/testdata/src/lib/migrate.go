// Regression fixture for the notification-to-capability migration: the
// pre-capability sink pattern parked completion on a notification and did
// its commit I/O inline in the callback — blocking the worker (and, once a
// capability is held, the frontier) until the store answered. The migrated
// pattern seals in the notification, hands the capability to a goroutine,
// and retires it with DropAsync on acknowledgement. The analyzer must keep
// flagging the old shape and stay quiet on the new one, so a future edit
// cannot quietly regress the sink to inline blocking commits.
package fixture

type timestamp struct{ Epoch int64 }

type Context struct{}

func (c *Context) HoldCapability(t timestamp) *Capability { return &Capability{} }
func (c *Context) NotifyAt(t timestamp)                   {}

type Capability struct{}

func (h *Capability) Drop()      {}
func (h *Capability) DropAsync() {}

type sinkVertex struct {
	ctx     *Context
	commits chan []byte
	acks    chan error
}

// The pre-migration shape: commit inline in the notification callback,
// holding the epoch's capability across a blocking send and the matching
// acknowledgement receive. The worker thread — and with it every vertex the
// worker hosts — stalls for the store round-trip.
func (v *sinkVertex) onNotifyOld(t timestamp, sealed []byte) {
	hc := v.ctx.HoldCapability(t)
	v.commits <- sealed // want `channel send while holding capability hc`
	<-v.acks            // want `channel receive while holding capability hc`
	hc.Drop()
}

// The migrated shape: the callback only seals; the commit round-trip runs
// on its own goroutine under the capability and retires it asynchronously.
func (v *sinkVertex) onNotifyNew(t timestamp, sealed []byte) {
	hc := v.ctx.HoldCapability(t)
	go func() {
		v.commits <- sealed
		if err := <-v.acks; err == nil {
			hc.DropAsync()
		}
	}()
}
