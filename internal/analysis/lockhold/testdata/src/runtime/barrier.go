// The barrier-control half of the fixture: a Computation-shaped type whose
// control-plane methods (InjectBarrier, AbortCut, ...) are recognized by
// name and receiver package, not by body — each fans control messages out
// into every worker mailbox, so calling one under a mutex couples the
// caller's lock order to every worker's.
package fixture

import "sync"

type computation struct{}

// The bodies are deliberately non-blocking: the analyzer must flag these
// calls from the method-name recognition alone, the same way it sees the
// real runtime.Computation from the supervise package.
func (c *computation) InjectBarrier(cut, epoch int64) error { return nil }
func (c *computation) AbortCut(cut int64)                   {}
func (c *computation) RetireCut(cut int64)                  {}
func (c *computation) CrashWorker(w int) error              { return nil }
func (c *computation) ReviveWorker(w int, cut int64) error  { return nil }

type cutDriver struct {
	mu   sync.Mutex
	comp *computation
	seq  int64
}

func (d *cutDriver) badInject(epoch int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	d.comp.InjectBarrier(d.seq, epoch) // want `barrier control broadcast \(InjectBarrier enqueues into every worker mailbox\) while holding d.mu`
}

func (d *cutDriver) badAbort(cut int64) {
	d.mu.Lock()
	d.comp.AbortCut(cut) // want `barrier control broadcast \(AbortCut enqueues into every worker mailbox\) while holding d.mu`
	d.mu.Unlock()
}

func (d *cutDriver) badRevive(w int, cut int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.comp.ReviveWorker(w, cut) // want `barrier control broadcast \(ReviveWorker enqueues into every worker mailbox\) while holding d.mu`
}

// Legal: snapshot the state under the lock, broadcast after releasing it.
func (d *cutDriver) goodInject(epoch int64) {
	d.mu.Lock()
	d.seq++
	cut := d.seq
	d.mu.Unlock()
	d.comp.InjectBarrier(cut, epoch)
}

// Legal: the helper itself holds no lock; only a lock-holding caller is at
// fault, and taint propagates to it through the call graph.
func (d *cutDriver) retire(cut int64) {
	d.comp.RetireCut(cut)
}

func (d *cutDriver) badRetireViaHelper(cut int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.retire(cut) // want `call to retire \(barrier control broadcast \(RetireCut enqueues into every worker mailbox\)\) while holding d.mu`
}
