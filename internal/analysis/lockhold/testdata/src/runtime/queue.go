// Package fixture exercises the lockhold analyzer. Its directory name
// (testdata/src/runtime) puts it in the analyzer's scope, standing in for
// naiad/internal/runtime.
package fixture

import "sync"

type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
	buf  []int
}

func (q *queue) bad() {
	q.mu.Lock()
	q.ch <- 1 // want `channel send while holding q.mu`
	q.mu.Unlock()
}

func (q *queue) badDefer() {
	q.mu.Lock()
	defer q.mu.Unlock()
	<-q.ch // want `channel receive while holding q.mu`
}

func (q *queue) badHelper() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.emit() // want `call to emit \(channel send\) while holding q.mu`
}

func (q *queue) emit() {
	q.ch <- 1 // no lock held here: the caller is at fault, not the helper
}

func (q *queue) badSelect(done chan struct{}) {
	q.mu.Lock()
	select { // want `select while holding q.mu`
	case q.ch <- 1:
	case <-done:
	}
	q.mu.Unlock()
}

// Legal: the lock is released before the handoff.
func (q *queue) good(v int) {
	q.mu.Lock()
	q.buf = append(q.buf, v)
	q.mu.Unlock()
	q.ch <- v
}

// Legal: a select with a default is a non-blocking poll.
func (q *queue) poll() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- 1:
		return true
	default:
		return false
	}
}

// Legal: Cond.Wait releases the lock while parked — the sanctioned
// lock-held wait pattern.
func (q *queue) drain() []int {
	q.mu.Lock()
	for len(q.buf) == 0 {
		q.cond.Wait()
	}
	out := q.buf
	q.buf = nil
	q.mu.Unlock()
	return out
}

// Legal: the goroutine body runs on its own schedule; the spawning
// function's held-set does not apply to it.
func (q *queue) spawn() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.ch <- 1
	}()
}
