// The capability half of the fixture: Context / Capability stand-ins for
// the runtime's held-token API. A capability minted by HoldCapability pins
// its pointstamp in every progress tracker, so a callback that blocks while
// holding one stalls the frontier with it — and a blocking operation that
// itself waits on progress at or past the held timestamp can never finish.
// Drop, TryDrop, and DropAsync release the tracked token.
package fixture

import "sync"

type timestamp struct{ Epoch int64 }

type Context struct{}

func (c *Context) HoldCapability(t timestamp) *Capability { return &Capability{} }
func (c *Context) NotifyAt(t timestamp)                   {}

type Capability struct{}

func (h *Capability) Drop()       {}
func (h *Capability) TryDrop()    {}
func (h *Capability) DropAsync()  {}
func (h *Capability) Seq() uint64 { return 0 }

type committer struct {
	mu  sync.Mutex
	ctx *Context
	ack chan struct{}
	out chan []byte
}

func (s *committer) badBlockingCommit(t timestamp, b []byte) {
	hc := s.ctx.HoldCapability(t)
	s.out <- b // want `channel send while holding capability hc`
	hc.Drop()
}

func (s *committer) badAwaitAck(t timestamp) {
	hc := s.ctx.HoldCapability(t)
	<-s.ack // want `channel receive while holding capability hc`
	hc.Drop()
}

func (s *committer) badCapAndLock(t timestamp, b []byte) {
	hc := s.ctx.HoldCapability(t)
	s.mu.Lock()
	s.out <- b // want `channel send while holding capability hc, s.mu`
	s.mu.Unlock()
	hc.Drop()
}

// Legal: the sanctioned exactly-once shape — the callback stays
// non-blocking, the goroutine does the slow send on its own schedule and
// retires the token with DropAsync.
func (s *committer) goodAsyncCommit(t timestamp, b []byte) {
	hc := s.ctx.HoldCapability(t)
	go func() {
		s.out <- b
		hc.DropAsync()
	}()
}

// Legal: the token is dropped before the callback blocks.
func (s *committer) goodDropFirst(t timestamp, b []byte) {
	hc := s.ctx.HoldCapability(t)
	hc.Drop()
	s.out <- b
}

// Legal: TryDrop also releases.
func (s *committer) goodTryDropFirst(t timestamp, b []byte) {
	hc := s.ctx.HoldCapability(t)
	hc.TryDrop()
	s.out <- b
}
