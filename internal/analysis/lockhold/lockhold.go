// Package lockhold flags sync.Mutex/RWMutex locks held across blocking
// operations in internal/runtime, internal/transport, and
// internal/supervise.
//
// The blocking operations of interest are channel sends and receives,
// selects without a default, Transport.Send, cross-goroutine enqueues
// (mailbox.push and friends — each acquires the receiving goroutine's own
// lock and wakes it), and the Computation barrier/recovery control
// broadcasts (InjectBarrier, AbortCut, RetireCut, CrashWorker,
// ReviveWorker), each of which enqueues into every worker mailbox. Holding a lock across one of them couples two
// goroutines' lock orders through the scheduler: the classic shape is a
// producer holding its own mutex while pushing into a worker mailbox whose
// owner is blocked trying to reach the producer — a deadlock the chaos
// partition tests can only trigger probabilistically, and this analyzer
// rules out structurally.
//
// sync.Cond.Wait is deliberately not a blocking operation here: Wait
// releases the associated lock while parked, which is the sanctioned
// lock-held wait pattern (mailbox.drain, accumulator.run).
//
// Held progress capabilities (Context.HoldCapability in internal/runtime
// and internal/lib) are tracked like locks: a capability pins its
// pointstamp in every tracker, so a callback that blocks while holding one
// stalls both the worker thread and the frontier — and if the blocked
// operation itself waits on progress at or past the held timestamp, it can
// never complete. The sanctioned pattern is the exactly-once sink's: keep
// the callback non-blocking, hand the capability to a goroutine, and
// retire it with DropAsync when the off-thread work finishes. Drop,
// TryDrop, and DropAsync release the tracked capability.
//
// The analysis is an intraprocedural, branch-insensitive walk over each
// function body (branches are explored with a copy of the held-set), plus a
// same-package transitive closure so that a helper performing a blocking
// operation taints its callers (e.g. Input helpers that push to mailboxes).
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"naiad/internal/analysis/framework"
)

const (
	runtimePath   = "naiad/internal/runtime"
	transportPath = "naiad/internal/transport"
	supervisePath = "naiad/internal/supervise"
	libPath       = "naiad/internal/lib"
)

// Analyzer is the lockhold pass.
var Analyzer = &framework.Analyzer{
	Name: "lockhold",
	Doc:  "flag locks and held capabilities carried across blocking operations (channel ops, Transport.Send, mailbox enqueue, barrier/recovery control broadcasts) in internal/runtime, internal/transport, internal/supervise, and internal/lib",
	Run:  run,
}

// enqueueMethods are the cross-goroutine handoff methods of the two scoped
// packages: each locks the receiving goroutine's mutex and signals it.
var enqueueMethods = map[string]bool{"push": true, "enqueue": true}

// barrierControlMethods are the Computation control-plane entry points of
// the asynchronous-barrier snapshot and selective-recovery paths. Each one
// fans a control message out into worker mailboxes (and CrashWorker /
// ReviveWorker additionally park or replay a worker loop), so every one is
// a cross-goroutine handoff: the supervisor calling them while holding one
// of its own mutexes would couple its lock order to every worker's — the
// exact shape the barrier chaos tests can only hit probabilistically.
var barrierControlMethods = map[string]bool{
	"InjectBarrier": true,
	"AbortCut":      true,
	"RetireCut":     true,
	"CrashWorker":   true,
	"ReviveWorker":  true,
}

// inScope limits the analysis to the packages whose goroutine topology it
// models. analysistest fixtures named after them stand in during tests.
func inScope(path string) bool {
	switch strings.TrimSuffix(path, "_test") {
	case runtimePath, transportPath, supervisePath, libPath:
		return true
	}
	return strings.HasSuffix(path, "testdata/src/runtime") ||
		strings.HasSuffix(path, "testdata/src/transport") ||
		strings.HasSuffix(path, "testdata/src/supervise") ||
		strings.HasSuffix(path, "testdata/src/lib")
}

func run(pass *framework.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &checker{pass: pass, blockingFuncs: make(map[*types.Func]string), bodies: make(map[*types.Func]*ast.FuncDecl)}
	c.buildCallGraph()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.walk(fd.Body, map[string]ast.Node{})
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass *framework.Pass
	// blockingFuncs maps same-package functions that (transitively) perform
	// a blocking operation to a description of it.
	blockingFuncs map[*types.Func]string
	bodies        map[*types.Func]*ast.FuncDecl
}

// buildCallGraph computes the transitive may-block property over the
// package's own functions.
func (c *checker) buildCallGraph() {
	calls := make(map[*types.Func][]*types.Func)
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.bodies[fn] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // a literal's body runs on its own schedule
				}
				if desc := c.directBlocking(n); desc != "" {
					if _, seen := c.blockingFuncs[fn]; !seen {
						c.blockingFuncs[fn] = desc
					}
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := c.samePkgCallee(call); callee != nil {
						calls[fn] = append(calls[fn], callee)
					}
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if _, ok := c.blockingFuncs[fn]; ok {
				continue
			}
			for _, callee := range callees {
				if desc, ok := c.blockingFuncs[callee]; ok {
					c.blockingFuncs[fn] = "call to " + callee.Name() + " (" + desc + ")"
					changed = true
					break
				}
			}
		}
	}
}

// directBlocking classifies n as a blocking operation, returning a
// description or "".
func (c *checker) directBlocking(n ast.Node) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" {
			return "channel receive"
		}
	case *ast.SelectStmt:
		for _, cl := range n.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				return "" // has a default: non-blocking poll
			}
		}
		return "select"
	case *ast.CallExpr:
		sel, ok := n.Fun.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return ""
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return ""
		}
		recv := sig.Recv().Type()
		if fn.Name() == "Send" && declaredIn(recv, transportPath) {
			return "Transport.Send"
		}
		if enqueueMethods[fn.Name()] && (declaredIn(recv, runtimePath) || declaredIn(recv, transportPath)) {
			return "mailbox enqueue (" + fn.Name() + ")"
		}
		if barrierControlMethods[fn.Name()] && declaredIn(recv, runtimePath) {
			return "barrier control broadcast (" + fn.Name() + " enqueues into every worker mailbox)"
		}
	}
	return ""
}

// declaredIn reports whether t's named type lives in the given real
// package, or in the analysistest fixture standing in for it
// (testdata/src/<basename>), so fixtures can exercise the cross-package
// method recognition too.
func declaredIn(t types.Type, path string) bool {
	if framework.DeclaredIn(t, path) {
		return true
	}
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "testdata/src/"+path[strings.LastIndex(path, "/")+1:])
}

// samePkgCallee resolves a call to a function or method declared in this
// package whose body we have.
func (c *checker) samePkgCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != c.pass.Pkg {
		return nil
	}
	if _, ok := c.bodies[fn]; !ok {
		return nil // interface method or body elsewhere
	}
	return fn
}

// walk simulates straight-line execution of a statement list, tracking
// which mutexes are held. Branch bodies get a copy of the held-set; the
// parent continues with its own (a lock taken inside a branch is assumed
// released there).
func (c *checker) walk(stmt ast.Stmt, held map[string]ast.Node) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.walk(st, held)
		}
	case *ast.ExprStmt:
		c.checkExpr(s.X, held)
		if call, ok := s.X.(*ast.CallExpr); ok {
			c.applyLockOp(call, held, false)
			c.applyCapDrop(call, held)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function exit: every
		// later statement executes under it, so leave the held-set alone.
		// Other deferred calls run after the body; don't scan them inline.
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			c.checkExpr(e, held)
		}
		c.applyCapHold(s, held)
	case *ast.SendStmt:
		c.report(s.Pos(), "channel send", held)
		c.checkExpr(s.Value, held)
	case *ast.SelectStmt:
		if desc := c.directBlocking(s); desc != "" {
			c.report(s.Pos(), desc, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				sub := copyHeld(held)
				for _, st := range cc.Body {
					c.walk(st, sub)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walk(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		c.walk(s.Body, copyHeld(held))
		if s.Else != nil {
			c.walk(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walk(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		c.walk(s.Body, copyHeld(held))
	case *ast.RangeStmt:
		c.checkExpr(s.X, held)
		c.walk(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walk(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				for _, st := range cc.Body {
					c.walk(st, sub)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				for _, st := range cc.Body {
					c.walk(st, sub)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the held-set; its body is
		// only scanned for locks it takes itself (via run's top-level pass
		// we do not descend into literals here).
	case *ast.LabeledStmt:
		c.walk(s.Stmt, held)
	case *ast.IncDecStmt:
		c.checkExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, held)
					}
				}
			}
		}
	}
}

// checkExpr scans an expression for blocking operations performed while
// locks are held. Function literals are skipped: their bodies execute on
// their own schedule, not at this program point.
func (c *checker) checkExpr(expr ast.Expr, held map[string]ast.Node) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if desc := c.directBlocking(n); desc != "" {
			c.report(n.Pos(), desc, held)
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := c.samePkgCallee(call); callee != nil {
				if desc, ok := c.blockingFuncs[callee]; ok {
					c.report(call.Pos(), "call to "+callee.Name()+" ("+desc+")", held)
				}
			}
		}
		return true
	})
}

// applyLockOp updates the held-set for a statement-level mu.Lock() /
// mu.Unlock() call.
func (c *checker) applyLockOp(call *ast.CallExpr, held map[string]ast.Node, deferred bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		held[key] = call
	case "Unlock", "RUnlock":
		if !deferred {
			delete(held, key)
		}
	}
}

// capPrefix marks held-set keys that are progress capabilities rather than
// mutexes.
const capPrefix = "capability "

// applyCapHold records a capability minted by Context.HoldCapability and
// bound to an identifier: `hc := ctx.HoldCapability(t)`. From that point
// the callback holds a frontier token; tracking stops at Drop, TryDrop, or
// DropAsync on the same identifier. A capability whose only binding is an
// immediate .Seq() (the checkpoint-by-sequence idiom) is deliberately not
// tracked — the holder is the off-thread committer, not this callback.
func (c *checker) applyCapHold(s *ast.AssignStmt, held map[string]ast.Node) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !c.isCapMethod(call, "HoldCapability", "Context") {
			continue
		}
		if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
			held[capPrefix+id.Name] = call
		}
	}
}

// applyCapDrop releases a tracked capability on a statement-level Drop,
// TryDrop, or DropAsync call.
func (c *checker) applyCapDrop(call *ast.CallExpr, held map[string]ast.Node) {
	if !c.isCapMethod(call, "Drop", "Capability") &&
		!c.isCapMethod(call, "TryDrop", "Capability") &&
		!c.isCapMethod(call, "DropAsync", "Capability") {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		delete(held, capPrefix+types.ExprString(sel.X))
	}
}

// isCapMethod reports whether call invokes the named method on the
// runtime's capability API (receiver type recvName declared in
// internal/runtime, or its fixture stand-in).
func (c *checker) isCapMethod(call *ast.CallExpr, name, recvName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	// The real API lives in internal/runtime; lib-scoped fixtures declare
	// their own stand-ins, so testdata/src/lib receivers count too.
	if !declaredIn(recv, runtimePath) && !declaredIn(recv, libPath) {
		return false
	}
	if p, ok := types.Unalias(recv).(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := types.Unalias(recv).(*types.Named)
	return ok && n.Obj().Name() == recvName
}

// report emits one finding when a blocking operation executes with locks
// or capabilities held, naming them and where they were taken.
func (c *checker) report(pos token.Pos, desc string, held map[string]ast.Node) {
	if len(held) == 0 {
		return
	}
	names := make([]string, 0, len(held))
	caps := 0
	for k := range held {
		names = append(names, k)
		if strings.HasPrefix(k, capPrefix) {
			caps++
		}
	}
	sort.Strings(names)
	advice := "release the lock first — holding it across a cross-goroutine handoff is the deadlock shape chaos partitions only find probabilistically"
	if caps == len(held) {
		advice = "a blocked callback pins the frontier at the capability's timestamp — drop it first, or move the blocking work to a goroutine that retires it with DropAsync"
	} else if caps > 0 {
		advice = "release the lock and drop the capability first — a blocked handoff here couples goroutine lock orders and pins the frontier"
	}
	c.pass.Reportf(pos, "%s while holding %s (acquired at line %d); %s",
		desc, strings.Join(names, ", "), c.pass.Fset.Position(held[names[0]].Pos()).Line, advice)
}

func copyHeld(held map[string]ast.Node) map[string]ast.Node {
	out := make(map[string]ast.Node, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
