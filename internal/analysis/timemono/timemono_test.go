package timemono_test

import (
	"testing"

	"naiad/internal/analysis/analysistest"
	"naiad/internal/analysis/timemono"
)

func TestTimemono(t *testing.T) {
	analysistest.Run(t, timemono.Analyzer, "a")
}
