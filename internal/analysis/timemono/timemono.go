// Package timemono flags SendBy/NotifyAt calls whose timestamp is visibly
// earlier than the time of the callback they run in.
//
// A vertex executing a callback at time t may only call SendBy or NotifyAt
// with times t' ≥ t in the could-result-in order (Naiad §2.3): sending
// backwards in time would let a message undermine a progress guarantee
// already delivered to some other vertex. The runtime enforces this
// dynamically (worker.sendBy panics, and progress.SafetyMonitor catches the
// frontier regression); this analyzer is the static twin, catching the
// shapes that are decidable at compile time:
//
//   - ts.Root(t.Epoch - 1) / ts.Make(t.Epoch - 1, …): an earlier epoch
//   - t.WithInner(t.Inner() - 1): a decremented loop counter
//   - t.PopLoop(): leaving the loop context of the executing time, which is
//     the timestamp action reserved for egress stages (worker.sendBy applies
//     it on their behalf; a user vertex passing a popped time sends outside
//     its own context)
//
// where t is a timestamp.Timestamp parameter of the enclosing function —
// the callback time of OnRecv/OnNotify, or of a helper the callback passes
// its time to.
package timemono

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"naiad/internal/analysis/framework"
)

const (
	runtimePath   = "naiad/internal/runtime"
	timestampPath = "naiad/internal/timestamp"
)

// Analyzer is the timemono pass.
var Analyzer = &framework.Analyzer{
	Name: "timemono",
	Doc:  "flag SendBy/NotifyAt times visibly earlier than the executing callback's time (Naiad §2.3 could-result-in order)",
	Run:  run,
}

// timeArgIndex maps Context methods to the indices of their timestamp
// arguments.
var timeArgIndex = map[string][]int{
	"SendBy":        {2},
	"NotifyAt":      {0},
	"NotifyAtCap":   {0, 1},
	"NotifyAtPurge": {0},
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		check(pass, file, nil)
	}
	return nil, nil
}

// check walks node with env, the set of timestamp.Timestamp parameters of
// the enclosing function chain ("the times the code is executing at").
func check(pass *framework.Pass, node ast.Node, env map[types.Object]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n == node {
				return true
			}
			check(pass, n, extend(pass, env, n.Type))
			return false
		case *ast.FuncLit:
			if n == node {
				return true
			}
			check(pass, n, extend(pass, env, n.Type))
			return false
		case *ast.CallExpr:
			checkCall(pass, n, env)
		}
		return true
	})
}

// extend returns env plus ft's timestamp.Timestamp parameters.
func extend(pass *framework.Pass, env map[types.Object]bool, ft *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool, len(env)+1)
	for k := range env {
		out[k] = true
	}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && framework.IsNamed(obj.Type(), timestampPath, "Timestamp") {
				out[obj] = true
			}
		}
	}
	return out
}

// checkCall flags Context.SendBy / NotifyAt* calls whose time argument is
// visibly earlier than an in-scope callback time.
func checkCall(pass *framework.Pass, call *ast.CallExpr, env map[types.Object]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	idxs, ok := timeArgIndex[sel.Sel.Name]
	if !ok {
		return
	}
	recv := pass.TypesInfo.Types[sel.X]
	if !framework.IsNamed(recv.Type, runtimePath, "Context") {
		return
	}
	for _, i := range idxs {
		if i >= len(call.Args) {
			continue
		}
		if reason := earlier(pass, call.Args[i], env); reason != "" {
			pass.Reportf(call.Args[i].Pos(), "%s at a time earlier than the executing callback's time: %s (could-result-in order, Naiad §2.3)",
				sel.Sel.Name, reason)
		}
	}
}

// earlier reports (as a non-empty reason) whether expr is a time visibly
// below every time in env in the could-result-in order.
func earlier(pass *framework.Pass, expr ast.Expr, env map[types.Object]bool) string {
	expr = ast.Unparen(expr)
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch {
	// t.PopLoop(): the result's loop coordinates are outside the callback
	// time's context; only the egress stage's system action may pop.
	case sel.Sel.Name == "PopLoop" && rootedAtTime(pass, sel.X, env):
		return "PopLoop leaves the loop context of the current time; only egress stages pop loop counters"

	// t.WithInner(t.Inner() - k): decremented innermost loop counter.
	case sel.Sel.Name == "WithInner" && rootedAtTime(pass, sel.X, env) && len(call.Args) == 1:
		if decremented(pass, call.Args[0], env, "Inner") {
			return "WithInner with a decremented loop counter"
		}

	// ts.Root(t.Epoch - k) / ts.Make(t.Epoch - k, …): earlier epoch.
	case (sel.Sel.Name == "Root" || sel.Sel.Name == "Make") && isTimestampPkgFunc(pass, sel) && len(call.Args) > 0:
		if decremented(pass, call.Args[0], env, "Epoch") {
			return sel.Sel.Name + " with a decremented epoch"
		}
	}
	return ""
}

// decremented reports whether expr has the shape `t.<field>() - k` or
// `t.<field> - k` for a positive constant k and an in-scope time t.
func decremented(pass *framework.Pass, expr ast.Expr, env map[types.Object]bool, field string) bool {
	bin, ok := ast.Unparen(expr).(*ast.BinaryExpr)
	if !ok || bin.Op != token.SUB {
		return false
	}
	v := pass.TypesInfo.Types[bin.Y].Value
	if v == nil || v.Kind() != constant.Int || constant.Sign(v) <= 0 {
		return false
	}
	x := ast.Unparen(bin.X)
	switch x := x.(type) {
	case *ast.SelectorExpr: // t.Epoch
		return x.Sel.Name == field && rootedAtTime(pass, x.X, env)
	case *ast.CallExpr: // t.Inner()
		sel, ok := x.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == field && rootedAtTime(pass, sel.X, env)
	}
	return false
}

// rootedAtTime reports whether expr denotes (a chain of timestamp method
// calls on) one of the in-scope callback times.
func rootedAtTime(pass *framework.Pass, expr ast.Expr, env map[types.Object]bool) bool {
	for {
		expr = ast.Unparen(expr)
		switch e := expr.(type) {
		case *ast.Ident:
			return env[pass.TypesInfo.Uses[e]]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.CallExpr:
			sel, ok := e.Fun.(*ast.SelectorExpr)
			if !ok {
				return false
			}
			expr = sel.X
		default:
			return false
		}
	}
}

// isTimestampPkgFunc reports whether sel names a package-level function of
// naiad/internal/timestamp (e.g. ts.Root, ts.Make).
func isTimestampPkgFunc(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == timestampPath
}
