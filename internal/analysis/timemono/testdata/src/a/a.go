// Package a exercises the timemono analyzer: SendBy/NotifyAt with times
// visibly earlier than the executing callback's time.
package a

import (
	rt "naiad/internal/runtime"
	ts "naiad/internal/timestamp"
)

type vertex struct {
	ctx *rt.Context
}

func (v *vertex) OnRecv(_ int, m rt.Message, t ts.Timestamp) {
	v.ctx.SendBy(0, m, ts.Root(t.Epoch-1))     // want `SendBy at a time earlier than the executing callback's time: Root with a decremented epoch`
	v.ctx.SendBy(0, m, ts.Make(t.Epoch-1, 0))  // want `Make with a decremented epoch`
	v.ctx.NotifyAt(t.PopLoop())                // want `only egress stages pop loop counters`
	v.ctx.NotifyAt(t.WithInner(t.Inner() - 1)) // want `WithInner with a decremented loop counter`

	// Legal: at or after the callback time in the could-result-in order.
	v.ctx.SendBy(0, m, t)
	v.ctx.NotifyAt(t.Tick())
	v.ctx.NotifyAt(ts.Root(t.Epoch + 1))
	v.ctx.NotifyAtCap(t, t.Tick())
	v.helper(m, t)
}

func (v *vertex) OnNotify(t ts.Timestamp) {
	v.ctx.NotifyAt(ts.Root(t.Epoch - 2)) // want `Root with a decremented epoch`
}

// helper receives the callback time as a parameter, so it is still "the
// executing time" inside the helper body.
func (v *vertex) helper(m rt.Message, now ts.Timestamp) {
	v.ctx.NotifyAt(ts.Root(now.Epoch - 1)) // want `Root with a decremented epoch`
	v.ctx.SendBy(0, m, now.Tick())         // legal
}

// fresh builds a time from a plain integer, not from a callback time; the
// analyzer cannot see an ordering violation here.
func (v *vertex) fresh(e int64) {
	v.ctx.NotifyAt(ts.Root(e - 1))
}

// stored: popping a locally built time (e.g. a stored capability) is not
// flagged; only the executing callback time's loop context is protected.
func (v *vertex) stored() {
	held := ts.Root(3).PushLoop()
	v.ctx.NotifyAt(held.PopLoop())
}

// literal: a callback time flowing into a closure keeps its protection.
func (v *vertex) literal() func(ts.Timestamp) {
	return func(t ts.Timestamp) {
		v.ctx.NotifyAt(t.PopLoop()) // want `only egress stages pop loop counters`
	}
}
