package framework

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// This file implements the whole-program Facts mechanism: the serialized
// observations an analyzer's pass on one package exports for the passes of
// the packages that import it, mirroring go/analysis facts.
//
// Facts are keyed by object (a function, a struct field, a package-level
// variable) or by package. Because the loader type-checks a package and its
// test variant separately, the "same" source object can be represented by
// two distinct types.Object values; keys are therefore derived from the
// object's declaration position (shared token.FileSet, same files, same
// position) plus its name, which unifies the variants. Fact payloads are
// gob-encoded on export and decoded on import, so a fact that would not
// survive a process boundary fails loudly here too.

// ObjectKey returns the stable whole-program key for obj: its declaration
// position and name. Objects without a valid position (universe objects)
// fall back to a package-path-qualified name.
func ObjectKey(fset *token.FileSet, obj types.Object) string {
	if obj == nil {
		return ""
	}
	if obj.Pos().IsValid() {
		p := fset.Position(obj.Pos())
		return fmt.Sprintf("%s:%d:%d/%s", p.Filename, p.Line, p.Column, obj.Name())
	}
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	return path + "." + obj.Name()
}

// BasePath strips the test-variant suffix from an import path:
// "pkg [pkg.test]" becomes "pkg". Plain paths pass through unchanged.
func BasePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// factEntry is one serialized fact.
type factEntry struct {
	typeName string
	data     []byte
	pos      token.Pos // declaration position of the keyed object (NoPos for package facts)
}

// factStore holds one run's facts for every whole-program analyzer,
// keyed analyzer → object-or-package key → entry.
type factStore struct {
	objects  map[string]map[string]factEntry
	packages map[string]map[string]factEntry
}

func newFactStore() *factStore {
	return &factStore{
		objects:  make(map[string]map[string]factEntry),
		packages: make(map[string]map[string]factEntry),
	}
}

// encodeFact serializes fact, validating that its concrete type was
// declared in the analyzer's FactTypes.
func encodeFact(a *Analyzer, fact Fact) factEntry {
	declared := false
	for _, ft := range a.FactTypes {
		if reflect.TypeOf(ft) == reflect.TypeOf(fact) {
			declared = true
			break
		}
	}
	if !declared {
		panic(fmt.Sprintf("framework: analyzer %s exports fact of undeclared type %T (add it to FactTypes)", a.Name, fact))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		panic(fmt.Sprintf("framework: analyzer %s: encoding %T: %v", a.Name, fact, err))
	}
	return factEntry{typeName: reflect.TypeOf(fact).String(), data: buf.Bytes()}
}

// decodeFact deserializes an entry into fact (a pointer of the matching
// concrete type), reporting whether the types agreed.
func decodeFact(e factEntry, fact Fact) bool {
	if e.typeName != reflect.TypeOf(fact).String() {
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(e.data)).Decode(fact); err != nil {
		panic(fmt.Sprintf("framework: decoding fact %s: %v", e.typeName, err))
	}
	return true
}

// ExportObjectFact associates fact with obj for the passes of downstream
// packages and for the analyzer's Finish step. Only whole-program analyzers
// (non-nil FactTypes) may export facts.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		panic(fmt.Sprintf("framework: analyzer %s exports facts but declares no FactTypes", p.Analyzer.Name))
	}
	e := encodeFact(p.Analyzer, fact)
	e.pos = obj.Pos()
	m := p.facts.objects[p.Analyzer.Name]
	if m == nil {
		m = make(map[string]factEntry)
		p.facts.objects[p.Analyzer.Name] = m
	}
	m[ObjectKey(p.Fset, obj)] = e
}

// ImportObjectFact decodes the fact previously exported for obj into fact,
// reporting whether one of the matching type existed. The fact arrives
// through the serialized store even for same-process passes, so round-trip
// fidelity is exercised on every import.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	e, ok := p.facts.objects[p.Analyzer.Name][ObjectKey(p.Fset, obj)]
	return ok && decodeFact(e, fact)
}

// ExportPackageFact associates fact with the package under analysis.
// Exporting twice overwrites: the last pass wins, which lets a base package
// and its test variant (analyzed under the same base path) refine one entry.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		panic(fmt.Sprintf("framework: analyzer %s exports facts but declares no FactTypes", p.Analyzer.Name))
	}
	m := p.facts.packages[p.Analyzer.Name]
	if m == nil {
		m = make(map[string]factEntry)
		p.facts.packages[p.Analyzer.Name] = m
	}
	m[p.pkgBase] = encodeFact(p.Analyzer, fact)
}

// ImportPackageFact decodes the fact exported by the package with the given
// base import path.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	e, ok := p.facts.packages[p.Analyzer.Name][BasePath(path)]
	return ok && decodeFact(e, fact)
}

// WholeProgram is the view handed to an analyzer's Finish step: every
// analyzed package, the shared FileSet, and the facts accumulated by the
// per-package passes.
type WholeProgram struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	// Report publishes one diagnostic.
	Report func(Diagnostic)

	facts *factStore
}

// Reportf reports a formatted diagnostic at pos.
func (wp *WholeProgram) Reportf(pos token.Pos, format string, args ...any) {
	wp.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ObjectFact decodes the fact stored under the given object key.
func (wp *WholeProgram) ObjectFact(key string, fact Fact) bool {
	e, ok := wp.facts.objects[wp.Analyzer.Name][key]
	return ok && decodeFact(e, fact)
}

// EachObjectFact visits every stored object fact whose type matches sample,
// in deterministic key order. The fact passed to fn is a freshly decoded
// value; fn may retain it.
func (wp *WholeProgram) EachObjectFact(sample Fact, fn func(key string, pos token.Pos, fact Fact)) {
	m := wp.facts.objects[wp.Analyzer.Name]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := reflect.TypeOf(sample)
	for _, k := range keys {
		e := m[k]
		if e.typeName != want.String() {
			continue
		}
		fresh := reflect.New(want.Elem()).Interface().(Fact)
		if decodeFact(e, fresh) {
			fn(k, e.pos, fresh)
		}
	}
}

// EachPackageFact visits every stored package fact whose type matches
// sample, in deterministic package order.
func (wp *WholeProgram) EachPackageFact(sample Fact, fn func(pkgPath string, fact Fact)) {
	m := wp.facts.packages[wp.Analyzer.Name]
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	want := reflect.TypeOf(sample)
	for _, p := range paths {
		e := m[p]
		if e.typeName != want.String() {
			continue
		}
		fresh := reflect.New(want.Elem()).Interface().(Fact)
		if decodeFact(e, fresh) {
			fn(p, fresh)
		}
	}
}

// IsTestFile reports whether the file at pos lives in a _test.go file.
// Whole-program analyzers that model only production goroutine topology use
// it to skip test sources (which the loader folds into test variants).
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
