package framework

import "testing"

func TestLoadSmoke(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root).Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		t.Logf("%s (%d files)", p.ImportPath, len(p.Files))
	}
}
