package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds a lightweight whole-program call graph from static call
// sites, for analyzers whose Finish step needs reachability (lock-order
// cycles, goroutine lifecycles). Resolution rules:
//
//   - Direct calls and method calls on concrete receivers resolve through
//     types.Info.Uses to the callee's declaration.
//   - Interface method calls resolve with class-hierarchy analysis: the
//     callees are that method on every concrete named type in the analyzed
//     package set that implements the interface. This over-approximates
//     (any implementation, not the ones actually bound) but is what makes
//     callback shapes — a runtime worker invoking a supervisor-registered
//     hook — visible to lock-order analysis.
//   - Calls through plain function values, method values, and reflection
//     are not resolved (a documented false-negative class).
//
// Function literals are not graph nodes: a literal's body runs on its own
// schedule (often a different goroutine), so its call sites are not
// attributed to the enclosing declaration. Analyzers that care about
// literal bodies walk them directly.

// CallGraph is the static call graph over a set of analyzed packages,
// keyed by ObjectKey.
type CallGraph struct {
	Fset *token.FileSet
	// Funcs maps a function's object key to its node. Only functions whose
	// declaration (with body) is in the analyzed set appear.
	Funcs map[string]*FuncNode

	// impls maps an interface method's object key to the keys of the
	// concrete methods implementing it, for Resolve.
	impls map[string][]string
}

// FuncNode is one declared function or method.
type FuncNode struct {
	Key  string
	Name string // qualified display name, e.g. (*runtime.worker).run
	Decl *ast.FuncDecl
	Pkg  *Package
	// Callees are this function's resolved static call sites, in source
	// order (interface sites expanded to every implementation).
	Callees []CallSite
}

// CallSite is one resolved call edge.
type CallSite struct {
	Callee  string // object key of the target
	Pos     token.Pos
	Dynamic bool // resolved via interface implementation matching
}

// FuncDisplayName renders fn as pkgname.Func or (*pkgname.Recv).Method.
func FuncDisplayName(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + fn.Name()
	}
	rt := sig.Recv().Type()
	star := ""
	if p, ok := types.Unalias(rt).(*types.Pointer); ok {
		rt, star = p.Elem(), "*"
	}
	name := rt.String()
	if n, ok := types.Unalias(rt).(*types.Named); ok {
		name = n.Obj().Name()
	}
	return "(" + star + pkg + name + ")." + fn.Name()
}

// BuildCallGraph constructs the call graph over pkgs. Packages sharing
// files (a base package and its test variant) are deduplicated by
// declaration position, so each function appears once.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: make(map[string]*FuncNode), impls: make(map[string][]string)}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}

	// Pass 1: index every function declaration with a body.
	type declInfo struct {
		node *FuncNode
		pkg  *Package
	}
	var order []string
	for _, pkg := range pkgs {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := ObjectKey(pkg.Fset, fn)
				if _, dup := g.Funcs[key]; dup {
					continue // same file under a test variant
				}
				g.Funcs[key] = &FuncNode{Key: key, Name: FuncDisplayName(fn), Decl: fd, Pkg: pkg}
				order = append(order, key)
			}
		}
	}

	// Pass 2: collect the named types of the analyzed set, for interface
	// resolution. Uninstantiated generic types are skipped: their method
	// sets cannot be queried with types.Implements.
	var concrete []types.Type
	var ifaces []*types.Named
	seenTypes := make(map[string]bool)
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := types.Unalias(tn.Type()).(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			key := ObjectKey(pkg.Fset, tn)
			if seenTypes[key] {
				continue
			}
			seenTypes[key] = true
			if types.IsInterface(named) {
				ifaces = append(ifaces, named)
			} else {
				concrete = append(concrete, named)
			}
		}
	}
	for _, in := range ifaces {
		iface, ok := in.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() == 0 {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			mkey := ObjectKey(g.Fset, m)
			for _, ct := range concrete {
				recv := ct
				if !types.Implements(recv, iface) {
					recv = types.NewPointer(ct)
					if !types.Implements(recv, iface) {
						continue
					}
				}
				obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
				impl, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				ikey := ObjectKey(g.Fset, impl)
				if _, inSet := g.Funcs[ikey]; inSet {
					g.impls[mkey] = append(g.impls[mkey], ikey)
				}
			}
			sort.Strings(g.impls[mkey])
		}
	}

	// Pass 3: resolve each function's call sites.
	for _, key := range order {
		node := g.Funcs[key]
		info := node.Pkg.TypesInfo
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := CalleeFunc(info, call)
			if fn == nil {
				return true
			}
			for _, cs := range g.resolve(fn, call.Pos()) {
				node.Callees = append(node.Callees, cs)
			}
			return true
		})
	}
	return g
}

// CalleeFunc resolves a call expression's target to a *types.Func (a
// declared function, a concrete method, or an interface method), or nil for
// function-value calls, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// resolve expands fn at pos into concrete call sites: itself for a static
// target, or every known implementation for an interface method.
func (g *CallGraph) resolve(fn *types.Func, pos token.Pos) []CallSite {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		var out []CallSite
		for _, ikey := range g.impls[ObjectKey(g.Fset, fn)] {
			out = append(out, CallSite{Callee: ikey, Pos: pos, Dynamic: true})
		}
		return out
	}
	return []CallSite{{Callee: ObjectKey(g.Fset, fn), Pos: pos}}
}

// Resolve maps a call target's object key to the keys of the function
// bodies it may execute: the key itself for a declared function in the
// set, or the implementing methods for an interface method's key.
func (g *CallGraph) Resolve(key string) []string {
	if impls, ok := g.impls[key]; ok {
		return impls
	}
	if _, ok := g.Funcs[key]; ok {
		return []string{key}
	}
	return nil
}

// IsInterfaceMethod reports whether fn is declared on an interface.
func IsInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// SortCallSites orders sites by position then callee, for deterministic
// consumers.
func SortCallSites(sites []CallSite) {
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Pos != sites[j].Pos {
			return sites[i].Pos < sites[j].Pos
		}
		return strings.Compare(sites[i].Callee, sites[j].Callee) < 0
	})
}
