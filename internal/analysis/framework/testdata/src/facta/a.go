// Package facta is the upstream half of the framework's facts fixture: the
// runner's dependency ordering must analyze it before factb, so facts
// exported here are importable there.
package facta

// Doer is implemented in factb; Dispatch's interface call exercises the
// call graph's implementation matching.
type Doer interface{ Do() int }

func Base() int { return 1 }

func Helper() int { return Base() + Base() }

func Dispatch(d Doer) int { return d.Do() }
