// Package factb is the downstream half of the framework's facts fixture:
// it imports facta, so its pass sees facta's exported facts.
package factb

import facta "naiad/internal/analysis/framework/testdata/src/facta"

type Impl struct{}

func (Impl) Do() int { return facta.Base() }

func Use() int { return facta.Helper() }
