// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver model, built entirely on the
// standard library's go/ast, go/parser, and go/types.
//
// The repository vendors no third-party modules and builds offline, so the
// real x/tools module is unavailable; this package mirrors its Analyzer /
// Pass / Diagnostic contract closely enough that the naiad-vet passes read
// like ordinary go/analysis passes and could be ported to the real
// framework by changing only import paths.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static analysis pass: a name for diagnostics and
// suppression comments, documentation, and the function that inspects a
// single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:naiad-vet:<name> suppression comments. It must be a valid Go
	// identifier.
	Name string

	// Doc documents the invariant the analyzer enforces. The first line is
	// a one-sentence summary.
	Doc string

	// Run inspects one type-checked package, reporting findings through
	// pass.Report. The return value is ignored by this driver; it exists to
	// keep the signature compatible with go/analysis.
	Run func(pass *Pass) (any, error)
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report publishes one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// IsNamed reports whether t (after unwrapping aliases and at most one level
// of pointer) is the named type path.name.
func IsNamed(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == path && obj.Name() == name
}

// DeclaredIn reports whether t (after unwrapping aliases and pointers) is a
// named type declared in the package with the given import path.
func DeclaredIn(t types.Type, path string) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path
}
