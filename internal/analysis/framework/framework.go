// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver model, built entirely on the
// standard library's go/ast, go/parser, and go/types.
//
// The repository vendors no third-party modules and builds offline, so the
// real x/tools module is unavailable; this package mirrors its Analyzer /
// Pass / Diagnostic contract closely enough that the naiad-vet passes read
// like ordinary go/analysis passes and could be ported to the real
// framework by changing only import paths.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static analysis pass: a name for diagnostics and
// suppression comments, documentation, and the function that inspects a
// single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:naiad-vet:<name> suppression comments. It must be a valid Go
	// identifier.
	Name string

	// Doc documents the invariant the analyzer enforces. The first line is
	// a one-sentence summary.
	Doc string

	// Run inspects one type-checked package, reporting findings through
	// pass.Report. The return value is ignored by this driver; it exists to
	// keep the signature compatible with go/analysis.
	Run func(pass *Pass) (any, error)

	// FactTypes declares the fact types the analyzer exports and imports
	// (as pointer samples, e.g. []Fact{&myFact{}}). A non-nil FactTypes —
	// or a non-nil Finish — promotes the analyzer to whole-program mode:
	// the runner visits packages in dependency order and carries facts
	// (serialized, go/analysis-style) from each package pass to the passes
	// of the packages that import it.
	FactTypes []Fact

	// Finish, when set, runs once after every package pass, with access to
	// the accumulated facts and the full package set. Global analyses that
	// need the whole program at once (a lock-order graph, a cross-package
	// access census) assemble and report here.
	Finish func(wp *WholeProgram) error
}

// Fact is an observation an analyzer exports about a types.Object or a
// package, to be imported by the passes of downstream packages. Fact types
// are pointers to plain structs with exported, gob-encodable fields; the
// AFact marker method keeps arbitrary types from being used by accident.
// Mirrors golang.org/x/tools/go/analysis.Fact.
type Fact interface{ AFact() }

// Pass carries one package's syntax and type information to an analyzer,
// mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report publishes one diagnostic.
	Report func(Diagnostic)

	// facts is the whole-program fact store; nil for per-package analyzers.
	facts *factStore
	// pkgBase is the base import path of the package under analysis (test
	// variants stripped), the key under which package facts are stored.
	pkgBase string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// IsNamed reports whether t (after unwrapping aliases and at most one level
// of pointer) is the named type path.name.
func IsNamed(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == path && obj.Name() == name
}

// DeclaredIn reports whether t (after unwrapping aliases and pointers) is a
// named type declared in the package with the given import path.
func DeclaredIn(t types.Type, path string) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path
}
