package framework

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads testdata/src/<dirs...> through the real loader.
func loadFixture(t *testing.T, dirs ...string) []*Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var patterns []string
	for _, d := range dirs {
		abs, err := filepath.Abs(filepath.Join("testdata", "src", d))
		if err != nil {
			t.Fatal(err)
		}
		patterns = append(patterns, abs)
	}
	pkgs, err := NewLoader(root).Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("loaded %d packages for %v", len(pkgs), dirs)
	}
	return pkgs
}

// callCountFact is the round-trip payload: the number of call expressions
// in a function's body.
type callCountFact struct{ Calls int }

func (*callCountFact) AFact() {}

// TestFactsRoundTrip proves facts exported by an upstream package's pass
// are importable — through the serialized store — by the pass of a package
// that imports it, in a two-package dependency chain. The packages are fed
// to Run in reverse dependency order to prove the runner reorders them.
func TestFactsRoundTrip(t *testing.T) {
	pkgs := loadFixture(t, "facta", "factb")
	// Reverse: factb (dependent) first; topoOrder must put facta back ahead.
	reversed := []*Package{pkgs[1], pkgs[0]}
	if !strings.HasSuffix(BasePath(reversed[0].ImportPath), "factb") {
		t.Fatalf("fixture order assumption broken: %v", reversed[0].ImportPath)
	}

	var order []string
	a := &Analyzer{
		Name:      "factprobe",
		Doc:       "test analyzer",
		FactTypes: []Fact{&callCountFact{}},
		Run: func(pass *Pass) (any, error) {
			order = append(order, pass.Pkg.Name())
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
					calls := 0
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						if _, ok := n.(*ast.CallExpr); ok {
							calls++
						}
						return true
					})
					pass.ExportObjectFact(fn, &callCountFact{Calls: calls})
					// In the downstream package, read back the facts of
					// every resolvable callee and report what arrived.
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						callee := CalleeFunc(pass.TypesInfo, call)
						if callee == nil || callee.Pkg() == pass.Pkg {
							return true
						}
						var imported callCountFact
						if pass.ImportObjectFact(callee, &imported) {
							pass.Reportf(call.Pos(), "callee %s has %d calls", callee.Name(), imported.Calls)
						}
						return true
					})
				}
			}
			return nil, nil
		},
	}
	findings, err := Run(reversed, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "facta" || order[1] != "factb" {
		t.Fatalf("packages analyzed in order %v, want [facta factb]", order)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Message)
	}
	// factb.Do calls Base (whose body has 0 calls) and factb.Use calls
	// Helper (whose body has 2).
	want := map[string]bool{
		"callee Base has 0 calls":   false,
		"callee Helper has 2 calls": false,
	}
	for _, m := range got {
		if _, ok := want[m]; ok {
			want[m] = true
		}
	}
	for m, seen := range want {
		if !seen {
			t.Errorf("missing finding %q in %v", m, got)
		}
	}
}

// TestPackageFactsRoundTrip checks the package-level fact channel and the
// Finish step's fact enumeration.
func TestPackageFactsRoundTrip(t *testing.T) {
	pkgs := loadFixture(t, "facta", "factb")
	type seenEntry struct {
		path  string
		calls int
	}
	var atFinish []seenEntry
	a := &Analyzer{
		Name:      "pkgfactprobe",
		Doc:       "test analyzer",
		FactTypes: []Fact{&callCountFact{}},
		Run: func(pass *Pass) (any, error) {
			pass.ExportPackageFact(&callCountFact{Calls: len(pass.Files)})
			if pass.Pkg.Name() == "factb" {
				var up callCountFact
				for _, imp := range pass.Pkg.Imports() {
					if strings.HasSuffix(imp.Path(), "facta") && pass.ImportPackageFact(imp.Path(), &up) {
						pass.Reportf(pass.Files[0].Package, "facta has %d files", up.Calls)
					}
				}
			}
			return nil, nil
		},
		Finish: func(wp *WholeProgram) error {
			wp.EachPackageFact(&callCountFact{}, func(path string, fact Fact) {
				atFinish = append(atFinish, seenEntry{path, fact.(*callCountFact).Calls})
			})
			return nil
		},
	}
	findings, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Message != "facta has 1 files" {
		t.Fatalf("want the downstream pass to import facta's package fact, got %v", findings)
	}
	if len(atFinish) != 2 {
		t.Fatalf("Finish saw %d package facts, want 2: %v", len(atFinish), atFinish)
	}
}

// TestCallGraph checks static and interface-resolved edges.
func TestCallGraph(t *testing.T) {
	pkgs := loadFixture(t, "facta", "factb")
	g := BuildCallGraph(pkgs)

	find := func(name string) *FuncNode {
		t.Helper()
		for _, n := range g.Funcs {
			if n.Name == name {
				return n
			}
		}
		t.Fatalf("no node %q in %v", name, func() []string {
			var names []string
			for _, n := range g.Funcs {
				names = append(names, n.Name)
			}
			return names
		}())
		return nil
	}

	use := find("factb.Use")
	helper := find("facta.Helper")
	hasEdge := func(n *FuncNode, callee string, dynamic bool) bool {
		for _, cs := range n.Callees {
			if cs.Callee == callee && cs.Dynamic == dynamic {
				return true
			}
		}
		return false
	}
	if !hasEdge(use, helper.Key, false) {
		t.Errorf("missing static edge factb.Use → facta.Helper: %+v", use.Callees)
	}

	dispatch := find("facta.Dispatch")
	do := find("(factb.Impl).Do")
	if !hasEdge(dispatch, do.Key, true) {
		t.Errorf("missing interface-resolved edge facta.Dispatch → (factb.Impl).Do: %+v", dispatch.Callees)
	}
}

// TestRunnerRecoversPanics is the regression test for the make-vet failure
// mode where one analyzer's panic aborted the whole run with no partial
// results: the crash must surface as a diagnostic and the remaining
// analyzers must still report.
func TestRunnerRecoversPanics(t *testing.T) {
	pkgs := loadFixture(t, "facta")
	boom := &Analyzer{
		Name: "boom",
		Doc:  "always panics",
		Run:  func(pass *Pass) (any, error) { panic("kaboom") },
	}
	steady := &Analyzer{
		Name: "steady",
		Doc:  "reports one finding per package",
		Run: func(pass *Pass) (any, error) {
			pass.Reportf(pass.Files[0].Package, "steady saw %s", pass.Pkg.Name())
			return nil, nil
		},
	}
	findings, err := Run(pkgs, []*Analyzer{boom, steady})
	if err != nil {
		t.Fatalf("a panicking analyzer must not abort the run: %v", err)
	}
	var crash, steadySeen bool
	for _, f := range findings {
		if f.Analyzer == CrashAnalyzerName && strings.Contains(f.Message, "boom panicked") && strings.Contains(f.Message, "kaboom") {
			crash = true
		}
		if f.Analyzer == "steady" {
			steadySeen = true
		}
	}
	if !crash {
		t.Errorf("missing crash diagnostic in %v", findings)
	}
	if !steadySeen {
		t.Errorf("the non-panicking analyzer was skipped: %v", findings)
	}

	// Whole-program variant: a panic in Finish is likewise contained.
	boomFinish := &Analyzer{
		Name:      "boomfinish",
		Doc:       "panics at Finish",
		FactTypes: []Fact{&callCountFact{}},
		Run:       func(pass *Pass) (any, error) { return nil, nil },
		Finish:    func(wp *WholeProgram) error { panic("late kaboom") },
	}
	findings, err = Run(pkgs, []*Analyzer{boomFinish, steady})
	if err != nil {
		t.Fatalf("a panicking Finish must not abort the run: %v", err)
	}
	crash = false
	for _, f := range findings {
		if f.Analyzer == CrashAnalyzerName && strings.Contains(f.Message, "late kaboom") {
			crash = true
		}
	}
	if !crash {
		t.Errorf("missing Finish crash diagnostic in %v", findings)
	}
}

// TestExportUndeclaredFactPanics pins the misuse guard: exporting a fact
// type not declared in FactTypes is an analyzer bug, reported as a crash
// finding by the runner's recovery.
func TestExportUndeclaredFactPanics(t *testing.T) {
	pkgs := loadFixture(t, "facta")
	type otherFact struct{ X int }
	sneaky := &Analyzer{
		Name:      "sneaky",
		Doc:       "exports an undeclared fact type",
		FactTypes: []Fact{&callCountFact{}},
		Run: func(pass *Pass) (any, error) {
			pass.ExportPackageFact(factPtr(&otherFact{X: 1}))
			return nil, nil
		},
	}
	findings, err := Run(pkgs, []*Analyzer{sneaky})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Analyzer != CrashAnalyzerName || !strings.Contains(findings[0].Message, "undeclared type") {
		t.Fatalf("want one crash finding about the undeclared fact type, got %v", findings)
	}
}

// factPtr adapts a plain struct pointer into a Fact for the misuse test.
type factWrapper[T any] struct{ V *T }

func (factWrapper[T]) AFact() {}

func factPtr[T any](v *T) Fact { return factWrapper[T]{V: v} }
