package framework

import "testing"

func TestSuppressesOn(t *testing.T) {
	lines := []string{
		"x := 1",
		"y := 2 //lint:naiad-vet writing y is fine here",
		"//lint:naiad-vet:timemono,tsimmut deliberate violation",
		"z := 3",
		"//lint:naiad-vet:lockhold reason",
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{1, "timemono", false},
		{2, "timemono", true}, // bare form covers every analyzer
		{2, "seedrand", true},
		{3, "timemono", true},
		{3, "tsimmut", true},
		{3, "seedrand", false}, // named form covers only the listed analyzers
		{5, "lockhold", true},
		{5, "timemono", false},
		{0, "timemono", false}, // out of range
		{6, "timemono", false},
	}
	for _, c := range cases {
		if got := suppressesOn(lines, c.line, c.analyzer); got != c.want {
			t.Errorf("suppressesOn(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}
