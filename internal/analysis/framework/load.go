package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package, ready for
// analysis.
type Package struct {
	// ImportPath is the package's resolved import path. Test variants keep
	// the `pkg [pkg.test]` form go list reports.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// ForTest is the base import path when this is a test variant
	// (the package recompiled together with its _test.go files).
	ForTest string
	// Standard marks GOROOT packages.
	Standard bool
	// Imports are the package's resolved direct imports (ImportMap
	// applied), as reported by go list. The whole-program runner orders
	// package passes by these edges so facts flow dependency-first.
	Imports []string

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	ForTest    string
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Loader enumerates packages with the go command and type-checks them from
// source with go/types. It needs no network and no module downloads: the
// repository's only dependencies are the standard library, whose sources
// ship with the toolchain.
type Loader struct {
	root string // module root (directory containing go.mod)

	fset     *token.FileSet
	list     map[string]*listPkg
	pkgs     map[string]*Package
	checking map[string]bool
}

// NewLoader returns a loader rooted at the module directory root.
func NewLoader(root string) *Loader {
	return &Loader{
		root:     root,
		fset:     token.NewFileSet(),
		list:     make(map[string]*listPkg),
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("framework: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load lists the packages matching patterns (plus their test variants) and
// returns them type-checked, in import-path order. Dependencies are
// type-checked as needed but not returned. When both a base package and its
// test variant match, only the variant is returned: it is a superset of the
// base package's files, and returning both would duplicate diagnostics.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json", "-deps", "-test", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.root
	// CGO_ENABLED=0 selects the pure-Go build of every package (net, os),
	// keeping the source set type-checkable without a C toolchain.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("framework: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}

	var targets []string
	dec := json.NewDecoder(&out)
	for dec.More() {
		lp := new(listPkg)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("framework: parsing go list output: %v", err)
		}
		if lp.Error != nil && lp.ImportPath == "" {
			return nil, fmt.Errorf("framework: go list: %s", lp.Error.Err)
		}
		l.list[lp.ImportPath] = lp
		// Targets are the matched packages themselves; `.test` entries are
		// the synthetic generated test mains, which have no real sources.
		if !lp.DepOnly && !strings.HasSuffix(lp.ImportPath, ".test") {
			targets = append(targets, lp.ImportPath)
		}
	}

	// Drop a base package when its test variant was also matched.
	hasVariant := make(map[string]bool)
	for _, ip := range targets {
		if ft := l.list[ip].ForTest; ft != "" && !strings.HasSuffix(ip, "_test ["+ft+".test]") {
			hasVariant[ft] = true
		}
	}
	var pkgs []*Package
	for _, ip := range targets {
		if hasVariant[ip] {
			continue
		}
		p, err := l.pkg(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// pkg parses and type-checks one package (and, recursively, its imports),
// memoizing the result.
func (l *Loader) pkg(importPath string) (*Package, error) {
	if importPath == "unsafe" {
		return &Package{ImportPath: "unsafe", Types: types.Unsafe}, nil
	}
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.checking[importPath] {
		return nil, fmt.Errorf("framework: import cycle through %s", importPath)
	}
	l.checking[importPath] = true
	defer delete(l.checking, importPath)

	lp, ok := l.list[importPath]
	if !ok {
		return nil, fmt.Errorf("framework: package %s not in go list output", importPath)
	}
	if lp.Error != nil {
		return nil, fmt.Errorf("framework: %s: %s", importPath, lp.Error.Err)
	}

	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("framework: %s: %v", importPath, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    importerFunc(func(path string) (*types.Package, error) { return l.resolve(lp, path) }),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	// go list reports `pkg [pkg.test]` for test variants; go/types wants a
	// plain path, and the variant must present itself under the base path so
	// external _test packages resolve their imports to it.
	checkPath := importPath
	if lp.ForTest != "" && !strings.Contains(importPath, "_test ") {
		checkPath = lp.ForTest
	} else if i := strings.IndexByte(checkPath, ' '); i >= 0 {
		checkPath = checkPath[:i]
	}
	tpkg, err := conf.Check(checkPath, l.fset, files, info)
	if err != nil && len(typeErrs) > 0 {
		return nil, fmt.Errorf("framework: type-checking %s: %v", importPath, typeErrs[0])
	} else if err != nil {
		return nil, fmt.Errorf("framework: type-checking %s: %v", importPath, err)
	}

	imports := make([]string, 0, len(lp.Imports))
	for _, imp := range lp.Imports {
		if mapped, ok := lp.ImportMap[imp]; ok {
			imp = mapped
		}
		imports = append(imports, imp)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        lp.Dir,
		ForTest:    lp.ForTest,
		Standard:   lp.Standard,
		Imports:    imports,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// resolve maps a source-level import path to its type-checked package,
// honoring the importing package's ImportMap (vendored std packages, test
// variants).
func (l *Loader) resolve(from *listPkg, path string) (*types.Package, error) {
	if mapped, ok := from.ImportMap[path]; ok {
		path = mapped
	}
	p, err := l.pkg(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
