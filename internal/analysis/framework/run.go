package framework

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Finding is one diagnostic resolved to a source position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// CrashAnalyzerName labels the synthetic diagnostics the runner emits when
// an analyzer panics: the crash is reported as a finding (so the run fails)
// and the remaining analyzers still execute, instead of one bad pass
// aborting the whole run with no partial results.
const CrashAnalyzerName = "crash"

// Run applies each analyzer to each package and returns the findings in
// source order, deduplicated. (A package and its test variant share the
// non-test files, so the same diagnostic can otherwise surface twice.)
//
// Analyzers with FactTypes or a Finish step run in whole-program mode:
// their package passes are ordered dependency-first (facts exported by a
// package are importable by the packages that import it) and their Finish
// step runs once at the end with the accumulated facts.
//
// A panic in one analyzer's pass is contained: it becomes a finding
// attributed to CrashAnalyzerName and the run continues.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	seen := make(map[string]bool)
	var findings []Finding
	report := func(analyzer string, pos token.Position, msg string) {
		f := Finding{Analyzer: analyzer, Position: pos, Message: msg}
		key := fmt.Sprintf("%s\x00%s\x00%s", f.Analyzer, f.Position, f.Message)
		if !seen[key] {
			seen[key] = true
			findings = append(findings, f)
		}
	}

	var perPkg, whole []*Analyzer
	for _, a := range analyzers {
		if a.FactTypes != nil || a.Finish != nil {
			whole = append(whole, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	runPass := func(a *Analyzer, pkg *Package, facts *factStore) error {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			facts:     facts,
			pkgBase:   BasePath(pkg.ImportPath),
		}
		pass.Report = func(d Diagnostic) {
			report(a.Name, pkg.Fset.Position(d.Pos), d.Message)
		}
		err, panicked := protect(func() error {
			_, err := a.Run(pass)
			return err
		})
		if panicked != nil {
			report(CrashAnalyzerName, crashPosition(pkg), fmt.Sprintf("analyzer %s panicked on %s: %v", a.Name, pkg.ImportPath, panicked))
			return nil
		}
		if err != nil {
			return fmt.Errorf("framework: analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		return nil
	}

	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.TypesInfo == nil {
			continue
		}
		for _, a := range perPkg {
			if err := runPass(a, pkg, nil); err != nil {
				return nil, err
			}
		}
	}

	if len(whole) > 0 {
		ordered := topoOrder(pkgs)
		facts := newFactStore()
		for _, a := range whole {
			for _, pkg := range ordered {
				if pkg.Types == nil || pkg.TypesInfo == nil {
					continue
				}
				if err := runPass(a, pkg, facts); err != nil {
					return nil, err
				}
			}
			if a.Finish == nil {
				continue
			}
			wp := &WholeProgram{Analyzer: a, Fset: fsetOf(ordered), Pkgs: ordered, facts: facts}
			wp.Report = func(d Diagnostic) {
				report(a.Name, wp.Fset.Position(d.Pos), d.Message)
			}
			err, panicked := protect(func() error { return a.Finish(wp) })
			if panicked != nil {
				report(CrashAnalyzerName, token.Position{}, fmt.Sprintf("analyzer %s panicked in Finish: %v", a.Name, panicked))
			} else if err != nil {
				return nil, fmt.Errorf("framework: analyzer %s Finish: %v", a.Name, err)
			}
		}
	}

	SortFindings(findings)
	return findings, nil
}

// protect runs f, converting a panic into a non-nil second return.
func protect(f func() error) (err error, panicked any) {
	defer func() {
		if r := recover(); r != nil {
			panicked = r
		}
	}()
	return f(), nil
}

// crashPosition anchors a crash finding at the package's first file.
func crashPosition(pkg *Package) token.Position {
	if len(pkg.Files) > 0 {
		return pkg.Fset.Position(pkg.Files[0].Package)
	}
	return token.Position{Filename: pkg.ImportPath}
}

func fsetOf(pkgs []*Package) *token.FileSet {
	for _, p := range pkgs {
		if p.Fset != nil {
			return p.Fset
		}
	}
	return token.NewFileSet()
}

// topoOrder sorts pkgs dependency-first by their import edges (restricted
// to the given set, test variants folded onto their base path), so facts
// exported by a package exist before any importer's pass runs. Ties and
// cycles (which go list would have rejected) fall back to import-path
// order.
func topoOrder(pkgs []*Package) []*Package {
	byBase := make(map[string]int, len(pkgs)) // base path → index
	for i, p := range pkgs {
		base := BasePath(p.ImportPath)
		if j, ok := byBase[base]; !ok || pkgs[j].ForTest == "" {
			// Prefer the test variant as the representative: it is a
			// superset of the base package's files.
			byBase[base] = i
		}
	}
	indeg := make([]int, len(pkgs))
	dependents := make([][]int, len(pkgs))
	for i, p := range pkgs {
		for _, imp := range p.Imports {
			j, ok := byBase[BasePath(imp)]
			if !ok || j == i {
				continue
			}
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	// Kahn's algorithm with a deterministic (import-path-ordered) ready set.
	idx := make([]int, 0, len(pkgs))
	for i := range pkgs {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return pkgs[idx[a]].ImportPath < pkgs[idx[b]].ImportPath })
	var ready []int
	for _, i := range idx {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	var order []*Package
	emitted := make([]bool, len(pkgs))
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		order = append(order, pkgs[i])
		emitted[i] = true
		for _, d := range dependents[i] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	for _, i := range idx { // cycle remnants, if any
		if !emitted[i] {
			order = append(order, pkgs[i])
		}
	}
	return order
}

// SortFindings orders findings by file, line, column, then analyzer.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// suppressionMarker introduces an intentional-violation comment. Accepted
// forms, on the flagged line or the line directly above it:
//
//	//lint:naiad-vet <reason>                  – suppress every analyzer
//	//lint:naiad-vet:timemono <reason>         – suppress one analyzer
//	//lint:naiad-vet:timemono,tsimmut <reason> – suppress several
//
// The reason text is free-form but should say why the violation is
// deliberate (e.g. a negative test that provokes the runtime's own check).
const suppressionMarker = "//lint:naiad-vet"

// SuppressionSite identifies one suppression comment by the file and line
// it sits on.
type SuppressionSite struct {
	File string
	Line int
}

// ApplySuppressions removes findings covered by //lint:naiad-vet comments
// in the source, returning the survivors, the number suppressed, and the
// set of suppression sites that did the suppressing (for staleness
// checking).
func ApplySuppressions(findings []Finding) ([]Finding, int, map[SuppressionSite]bool, error) {
	lines := make(map[string][]string)
	used := make(map[SuppressionSite]bool)
	kept := findings[:0]
	suppressed := 0
	for _, f := range findings {
		ls, ok := lines[f.Position.Filename]
		if !ok {
			var err error
			ls, err = readLines(f.Position.Filename)
			if err != nil {
				return nil, 0, nil, err
			}
			lines[f.Position.Filename] = ls
		}
		switch {
		case suppressesOn(ls, f.Position.Line, f.Analyzer):
			used[SuppressionSite{f.Position.Filename, f.Position.Line}] = true
			suppressed++
		case suppressesOn(ls, f.Position.Line-1, f.Analyzer):
			used[SuppressionSite{f.Position.Filename, f.Position.Line - 1}] = true
			suppressed++
		default:
			kept = append(kept, f)
		}
	}
	return kept, suppressed, used, nil
}

// StaleSuppressions scans the packages' comments for //lint:naiad-vet
// markers that suppressed nothing in this run and reports each as a
// finding, so dead waivers cannot accumulate (staticcheck-style). Only
// comments that literally begin with the marker count: prose that merely
// mentions the syntax (documentation, string literals) is ignored. Callers
// should invoke this only when the full analyzer suite ran — under a
// subset, a suppression for an unexercised analyzer is not stale.
func StaleSuppressions(pkgs []*Package, used map[SuppressionSite]bool) []Finding {
	var findings []Finding
	seen := make(map[SuppressionSite]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, suppressionMarker) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					site := SuppressionSite{pos.Filename, pos.Line}
					if seen[site] || used[site] {
						continue
					}
					seen[site] = true
					names := "every analyzer"
					if rest, ok := strings.CutPrefix(c.Text[len(suppressionMarker):], ":"); ok {
						list, _, _ := strings.Cut(rest, " ")
						names = list
					}
					findings = append(findings, Finding{
						Analyzer: "suppression",
						Position: pos,
						Message:  fmt.Sprintf("stale suppression (%s): no diagnostic here to suppress; remove the comment or fix the analyzer name", names),
					})
				}
			}
		}
	}
	SortFindings(findings)
	return findings
}

// suppressesOn reports whether source line n (1-based) carries a
// suppression comment covering the named analyzer.
func suppressesOn(lines []string, n int, analyzer string) bool {
	if n < 1 || n > len(lines) {
		return false
	}
	line := lines[n-1]
	i := strings.Index(line, suppressionMarker)
	if i < 0 {
		return false
	}
	rest := line[i+len(suppressionMarker):]
	if !strings.HasPrefix(rest, ":") {
		return true // bare form: all analyzers
	}
	names, _, _ := strings.Cut(rest[1:], " ")
	for _, name := range strings.Split(names, ",") {
		if name == analyzer {
			return true
		}
	}
	return false
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines, sc.Err()
}
