package framework

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Finding is one diagnostic resolved to a source position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// Run applies each analyzer to each package and returns the findings in
// source order, deduplicated. (A package and its test variant share the
// non-test files, so the same diagnostic can otherwise surface twice.)
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	seen := make(map[string]bool)
	var findings []Finding
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.TypesInfo == nil {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				f := Finding{Analyzer: a.Name, Position: pkg.Fset.Position(d.Pos), Message: d.Message}
				key := fmt.Sprintf("%s\x00%s\x00%s", f.Analyzer, f.Position, f.Message)
				if !seen[key] {
					seen[key] = true
					findings = append(findings, f)
				}
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("framework: analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// suppressionMarker introduces an intentional-violation comment. Accepted
// forms, on the flagged line or the line directly above it:
//
//	//lint:naiad-vet <reason>                  – suppress every analyzer
//	//lint:naiad-vet:timemono <reason>         – suppress one analyzer
//	//lint:naiad-vet:timemono,tsimmut <reason> – suppress several
//
// The reason text is free-form but should say why the violation is
// deliberate (e.g. a negative test that provokes the runtime's own check).
const suppressionMarker = "//lint:naiad-vet"

// ApplySuppressions removes findings covered by //lint:naiad-vet comments
// in the source, returning the survivors and the number suppressed.
func ApplySuppressions(findings []Finding) ([]Finding, int, error) {
	lines := make(map[string][]string)
	kept := findings[:0]
	suppressed := 0
	for _, f := range findings {
		ls, ok := lines[f.Position.Filename]
		if !ok {
			var err error
			ls, err = readLines(f.Position.Filename)
			if err != nil {
				return nil, 0, err
			}
			lines[f.Position.Filename] = ls
		}
		if suppressesOn(ls, f.Position.Line, f.Analyzer) || suppressesOn(ls, f.Position.Line-1, f.Analyzer) {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed, nil
}

// suppressesOn reports whether source line n (1-based) carries a
// suppression comment covering the named analyzer.
func suppressesOn(lines []string, n int, analyzer string) bool {
	if n < 1 || n > len(lines) {
		return false
	}
	line := lines[n-1]
	i := strings.Index(line, suppressionMarker)
	if i < 0 {
		return false
	}
	rest := line[i+len(suppressionMarker):]
	if !strings.HasPrefix(rest, ":") {
		return true // bare form: all analyzers
	}
	names, _, _ := strings.Cut(rest[1:], " ")
	for _, name := range strings.Split(names, ",") {
		if name == analyzer {
			return true
		}
	}
	return false
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines, sc.Err()
}
