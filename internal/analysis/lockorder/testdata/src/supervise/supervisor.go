// Package sup is the supervisor-shaped fixture for the lockorder analyzer:
// the checkpoint loop holds the supervisor mutex while probing the
// computation (supervisor lock before computation lock), and the progress
// callback the computation invokes takes the supervisor mutex (computation
// lock before supervisor lock) — the PR 3 quiesce-deadlock shape. The
// cycle's diagnostic is anchored at its earliest edge, which lives in the
// runtime fixture.
package sup

import (
	"sync"

	comp "naiad/internal/analysis/lockorder/testdata/src/runtime"
)

type Supervisor struct {
	mu   sync.Mutex
	comp *comp.Computation
	seen map[int]bool
}

// Checkpoint holds the supervisor lock across the computation probe: the
// supervisor-before-computation half of the cycle.
func (s *Supervisor) Checkpoint(epoch int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.comp.Probe(epoch) {
	}
	s.seen[epoch] = true
}

// OnQuiesce implements comp.Snapshotter; the computation calls it with its
// own lock held, and it takes the supervisor lock: the
// computation-before-supervisor half.
func (s *Supervisor) OnQuiesce(epoch int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen[epoch] = true
}
