// Package pipe is the suppression fixture for the lockorder analyzer: a
// deliberate intra-package lock-order cycle waived with a
// //lint:naiad-vet:lockorder comment, plus one stale suppression that
// waives nothing. The driver-level test asserts the cycle is suppressed
// and the stale comment is itself reported.
package pipe

import "sync"

type pipe struct {
	readMu  sync.Mutex
	writeMu sync.Mutex
}

func (p *pipe) drain() {
	p.readMu.Lock()
	//lint:naiad-vet:lockorder deliberate inversion: fixture proving suppressions waive cycles
	p.writeMu.Lock()
	p.writeMu.Unlock()
	p.readMu.Unlock()
}

func (p *pipe) flush() {
	p.writeMu.Lock()
	p.readMu.Lock()
	p.readMu.Unlock()
	p.writeMu.Unlock()
}

//lint:naiad-vet:lockorder stale waiver: nothing on the next line violates anything
func (p *pipe) idle() {}
