// Package comp is the runtime-shaped fixture for the lockorder analyzer
// (its directory name, testdata/src/runtime, puts it in scope). It models
// the computation half of the PR 3 multi-input checkpoint quiesce
// deadlock: the worker advancing an epoch holds the computation mutex and
// reports progress through a supervisor-registered callback, while the
// supervisor's checkpoint loop holds its own mutex and probes the
// computation — opposite acquisition orders threaded through two packages
// and an interface.
package comp

import "sync"

// Snapshotter is the supervisor-side progress hook the computation calls
// back into; the analyzer resolves its implementations whole-program.
type Snapshotter interface {
	OnQuiesce(epoch int)
}

type Computation struct {
	mu   sync.Mutex
	snap Snapshotter
	fed  map[int]int
}

// Probe is called by the supervisor's checkpoint-alignment loop.
func (c *Computation) Probe(epoch int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fed[epoch] >= 2
}

// Advance is the worker path: it holds the computation lock while invoking
// the supervisor callback, completing the cross-package cycle.
func (c *Computation) Advance(epoch int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fed[epoch]++
	if c.fed[epoch] >= 2 {
		c.snap.OnQuiesce(epoch) // want `potential deadlock: lock-order cycle comp\.Computation\.mu → sup\.Supervisor\.mu → comp\.Computation\.mu`
	}
}

// queue demonstrates an intra-package inversion: two lock classes taken in
// both orders by different paths.
type queue struct {
	headMu sync.Mutex
	tailMu sync.Mutex
}

func (q *queue) pushOrdered() {
	q.headMu.Lock()
	q.tailMu.Lock() // want `potential deadlock: lock-order cycle comp\.queue\.headMu → comp\.queue\.tailMu → comp\.queue\.headMu`
	q.tailMu.Unlock()
	q.headMu.Unlock()
}

func (q *queue) popInverted() {
	q.tailMu.Lock()
	q.headMu.Lock()
	q.headMu.Unlock()
	q.tailMu.Unlock()
}

// ledger shows the clean shape: every path agrees on one global order, so
// no cycle exists and nothing is reported.
type ledger struct {
	indexMu sync.Mutex
	dataMu  sync.Mutex
}

func (l *ledger) read() {
	l.indexMu.Lock()
	l.dataMu.Lock()
	l.dataMu.Unlock()
	l.indexMu.Unlock()
}

func (l *ledger) write() {
	l.indexMu.Lock()
	defer l.indexMu.Unlock()
	l.dataMu.Lock()
	defer l.dataMu.Unlock()
}
