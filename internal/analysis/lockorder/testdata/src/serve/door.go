// Package door is the serving-front-door-shaped fixture for the lockorder
// analyzer (its directory name, testdata/src/serve, puts it in scope). It
// models the "lock held across session I/O" deadlock the real
// internal/serve must avoid: a broadcast path holds the server registry
// mutex while writing to each session (server lock before session lock),
// while a session's flush path holds its own mutex and calls back into the
// server's accounting (session lock before server lock). An idle client
// that stalls the write turns the inversion into a wedged front door.
package door

import "sync"

type Session struct {
	mu   sync.Mutex
	srv  *Server
	sent int
}

type Server struct {
	mu       sync.Mutex
	sessions []*Session
	accepted int
}

// write delivers one frame to the client under the session lock.
func (s *Session) write(frame []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sent += len(frame)
}

// flush holds the session lock across the server accounting callback: the
// session-before-server half of the cycle. The diagnostic anchors here —
// the cycle's earliest edge by position.
func (s *Session) flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.srv.account(s.sent) // want `potential deadlock: lock-order cycle door\.Session\.mu → door\.Server\.mu → door\.Session\.mu`
}

func (sv *Server) account(n int) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.accepted += n
}

// Broadcast holds the server registry lock while performing session I/O:
// the server-before-session half.
func (sv *Server) Broadcast(frame []byte) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	for _, s := range sv.sessions {
		s.write(frame)
	}
}

// SnapshotThenSend is the sanctioned shape: copy the session list under the
// registry lock, release it, then do the I/O — no lock spans the writes, so
// no edge into the session class is recorded from under Server.mu.
func (sv *Server) SnapshotThenSend(frame []byte) {
	sv.mu.Lock()
	snap := make([]*Session, len(sv.sessions))
	copy(snap, sv.sessions)
	sv.mu.Unlock()
	for _, s := range snap {
		s.write(frame)
	}
}
