// Package lockorder lifts lockhold's per-function held-sets into a global
// lock-acquisition-order graph across internal/runtime, internal/transport,
// internal/supervise, and internal/serve, and reports cycles as potential
// deadlocks.
//
// Two goroutines that acquire the same pair of locks in opposite orders can
// deadlock; so can longer chains threaded through any number of packages.
// The shape this repo has actually shipped is cross-package: the PR 3
// multi-input checkpoint quiesce held the supervisor's mutex while probing
// the computation (supervisor lock before computation lock) while a worker
// advancing an epoch held the computation's mutex and called back into the
// supervisor's progress hook (computation lock before supervisor lock). No
// per-package analyzer can see that cycle: each package's order is locally
// consistent. This analyzer therefore runs whole-program: each package pass
// records, as serialized facts, the lock classes every function acquires
// and every acquisition or call performed while a lock is held; the Finish
// step resolves calls through the cross-package call graph (interface
// callbacks included, via implementation matching) into a single directed
// lock-order graph and reports every strongly connected component.
//
// Locks are tracked as classes — the declaration of the mutex field or
// variable — not instances. Two edges between the same pair of classes in
// opposite orders are a cycle even if at runtime they could involve four
// distinct mutexes; ordering within one class (locking two workers'
// mutexes by worker id) is invisible, so same-class self-edges are not
// reported. Known false-negative classes: locks reached only through plain
// function values, locks acquired in function literals on behalf of an
// enclosing caller's summary (literal bodies contribute their own edges but
// not to their encloser's acquire set), and locks hidden behind packages
// outside the analysis scope.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"naiad/internal/analysis/framework"
)

const (
	runtimePath   = "naiad/internal/runtime"
	transportPath = "naiad/internal/transport"
	supervisePath = "naiad/internal/supervise"
	servePath     = "naiad/internal/serve"
)

// Analyzer is the lockorder pass.
var Analyzer = &framework.Analyzer{
	Name:      "lockorder",
	Doc:       "build the whole-program lock-acquisition-order graph over internal/runtime, internal/transport, internal/supervise, and internal/serve and report cycles as potential deadlocks",
	Run:       run,
	Finish:    finish,
	FactTypes: []framework.Fact{&AcquiresFact{}, &EdgesFact{}},
}

// LockID identifies a lock class: the declaration of the sync.Mutex /
// sync.RWMutex field or variable.
type LockID struct {
	Key  string // framework.ObjectKey of the mutex object
	Name string // display name, e.g. supervise.Supervisor.mu
}

// AcquiresFact is an object fact on a function: the lock classes its body
// acquires directly (outside function literals).
type AcquiresFact struct{ Locks []LockID }

func (*AcquiresFact) AFact() {}

// EdgesFact is a package fact: the lock-order observations of one package.
type EdgesFact struct {
	// Edges are direct nested acquisitions: From was held when To was
	// acquired.
	Edges []Edge
	// Calls are call sites executed while at least one lock was held; the
	// Finish step expands each callee's transitive acquire set into edges.
	Calls []HeldCall
}

func (*EdgesFact) AFact() {}

// Edge is one observed acquisition order: From held, To acquired at Pos.
type Edge struct {
	From, To LockID
	Pos      token.Pos
	// Via describes an indirect edge ("via call to X"); empty for a direct
	// nested acquisition.
	Via string
}

// HeldCall is a call site executed under held locks.
type HeldCall struct {
	Held       []LockID
	Callee     string // object key of the target (possibly an interface method)
	CalleeName string
	Pos        token.Pos
}

// inScope limits the analysis to the packages whose goroutine topology it
// models. analysistest fixtures named after them stand in during tests.
func inScope(path string) bool {
	switch strings.TrimSuffix(path, "_test") {
	case runtimePath, transportPath, supervisePath, servePath:
		return true
	}
	return strings.HasSuffix(path, "testdata/src/runtime") ||
		strings.HasSuffix(path, "testdata/src/transport") ||
		strings.HasSuffix(path, "testdata/src/supervise") ||
		strings.HasSuffix(path, "testdata/src/serve")
}

func run(pass *framework.Pass) (any, error) {
	if !inScope(framework.BasePath(pass.Pkg.Path())) {
		return nil, nil
	}
	c := &collector{pass: pass, acquires: make(map[*types.Func][]LockID)}
	for _, file := range pass.Files {
		if framework.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			c.fn = fn
			c.walk(fd.Body, map[string]LockID{})
		}
	}
	for fn, locks := range c.acquires {
		c.pass.ExportObjectFact(fn, &AcquiresFact{Locks: dedupeLocks(locks)})
	}
	if len(c.edges) > 0 || len(c.calls) > 0 {
		pass.ExportPackageFact(&EdgesFact{Edges: c.edges, Calls: c.calls})
	}
	return nil, nil
}

type collector struct {
	pass     *framework.Pass
	fn       *types.Func // enclosing declaration (nil inside literals)
	edges    []Edge
	calls    []HeldCall
	acquires map[*types.Func][]LockID
}

// walk simulates straight-line execution of a statement list, tracking the
// held lock classes. Branch bodies get a copy of the held-set; the parent
// continues with its own (a lock taken inside a branch is assumed released
// there). Function literals are walked with an empty held-set: their bodies
// run on their own schedule, but the edges they create are global facts.
func (c *collector) walk(stmt ast.Stmt, held map[string]LockID) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.walk(st, held)
		}
	case *ast.ExprStmt:
		c.scanExpr(s.X, held)
		if call, ok := s.X.(*ast.CallExpr); ok {
			c.applyLockOp(call, held)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function exit; other
		// deferred calls run after the body. Either way the held-set is
		// unchanged at this point, but the deferred expression's literals
		// still deserve a scan.
		c.scanExpr(s.Call.Fun, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, held)
		}
	case *ast.SendStmt:
		c.scanExpr(s.Value, held)
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				sub := copyHeld(held)
				for _, st := range cc.Body {
					c.walk(st, sub)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walk(s.Init, held)
		}
		c.scanExpr(s.Cond, held)
		c.walk(s.Body, copyHeld(held))
		if s.Else != nil {
			c.walk(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walk(s.Init, held)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, held)
		}
		c.walk(s.Body, copyHeld(held))
	case *ast.RangeStmt:
		c.scanExpr(s.X, held)
		c.walk(s.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walk(s.Init, held)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				for _, st := range cc.Body {
					c.walk(st, sub)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				for _, st := range cc.Body {
					c.walk(st, sub)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the held-set; its literal
		// body (if any) is scanned with a fresh one.
		c.scanExpr(s.Call.Fun, map[string]LockID{})
	case *ast.LabeledStmt:
		c.walk(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, held)
					}
				}
			}
		}
	}
}

// scanExpr records calls made under held locks and descends into function
// literals with a fresh held-set.
func (c *collector) scanExpr(expr ast.Expr, held map[string]LockID) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			saved := c.fn
			c.fn = nil // literal acquisitions are not the encloser's
			c.walk(n.Body, map[string]LockID{})
			c.fn = saved
			return false
		case *ast.CallExpr:
			c.recordCall(n, held)
		}
		return true
	})
}

// recordCall notes a call executed under held locks, unless it is a sync
// lock operation (handled by applyLockOp) or unresolvable.
func (c *collector) recordCall(call *ast.CallExpr, held map[string]LockID) {
	if len(held) == 0 {
		return
	}
	fn := framework.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == "sync" {
		return
	}
	c.calls = append(c.calls, HeldCall{
		Held:       sortedHeld(held),
		Callee:     framework.ObjectKey(c.pass.Fset, fn),
		CalleeName: framework.FuncDisplayName(fn),
		Pos:        call.Pos(),
	})
}

// applyLockOp updates the held-set for a statement-level Lock/Unlock call,
// recording acquisition-order edges and the enclosing function's acquire
// set.
func (c *collector) applyLockOp(call *ast.CallExpr, held map[string]LockID) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	id, ok := c.lockID(sel.X)
	if !ok {
		return
	}
	switch fn.Name() {
	case "Lock", "RLock":
		for _, h := range held {
			if h.Key != id.Key {
				c.edges = append(c.edges, Edge{From: h, To: id, Pos: call.Pos()})
			}
		}
		held[id.Key] = id
		if c.fn != nil {
			c.acquires[c.fn] = append(c.acquires[c.fn], id)
		}
	case "Unlock", "RUnlock":
		delete(held, id.Key)
	}
}

// lockID resolves the receiver expression of a sync lock call to its lock
// class: the declared field or variable.
func (c *collector) lockID(e ast.Expr) (LockID, bool) {
	e = ast.Unparen(e)
	var obj types.Object
	var recvName string
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[x]; ok {
			obj = sel.Obj()
			recvName = namedTypeName(sel.Recv())
		} else {
			obj = c.pass.TypesInfo.Uses[x.Sel] // package-qualified var
		}
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[x]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return LockID{}, false
	}
	name := v.Name()
	if recvName != "" {
		name = recvName + "." + name
	}
	if v.Pkg() != nil {
		name = v.Pkg().Name() + "." + name
	}
	return LockID{Key: framework.ObjectKey(c.pass.Fset, v), Name: name}, true
}

func namedTypeName(t types.Type) string {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// finish assembles the global lock-order graph and reports cycles.
func finish(wp *framework.WholeProgram) error {
	cg := framework.BuildCallGraph(wp.Pkgs)

	// Transitive acquire sets, seeded from the per-function facts and
	// propagated over the call graph to a fixpoint.
	acquires := make(map[string]map[string]LockID) // func key → lock key → id
	wp.EachObjectFact(&AcquiresFact{}, func(key string, _ token.Pos, fact framework.Fact) {
		set := make(map[string]LockID)
		for _, l := range fact.(*AcquiresFact).Locks {
			set[l.Key] = l
		}
		acquires[key] = set
	})
	funcKeys := make([]string, 0, len(cg.Funcs))
	for k := range cg.Funcs {
		funcKeys = append(funcKeys, k)
	}
	sort.Strings(funcKeys)
	for changed := true; changed; {
		changed = false
		for _, fk := range funcKeys {
			node := cg.Funcs[fk]
			for _, cs := range node.Callees {
				for lk, l := range acquires[cs.Callee] {
					set := acquires[fk]
					if set == nil {
						set = make(map[string]LockID)
						acquires[fk] = set
					}
					if _, ok := set[lk]; !ok {
						set[lk] = l
						changed = true
					}
				}
			}
		}
	}

	// The edge set: direct nested acquisitions plus, for every call made
	// under held locks, edges to everything the callee may acquire.
	var edges []Edge
	wp.EachPackageFact(&EdgesFact{}, func(_ string, fact framework.Fact) {
		ef := fact.(*EdgesFact)
		edges = append(edges, ef.Edges...)
		for _, hc := range ef.Calls {
			for _, target := range cg.Resolve(hc.Callee) {
				for _, l := range acquires[target] {
					for _, h := range hc.Held {
						if h.Key == l.Key {
							continue
						}
						via := "via call to " + hc.CalleeName
						if target != hc.Callee {
							if tn := cg.Funcs[target]; tn != nil {
								via += " → " + tn.Name
							}
						}
						edges = append(edges, Edge{From: h, To: l, Pos: hc.Pos, Via: via})
					}
				}
			}
		}
	})
	if len(edges) == 0 {
		return nil
	}

	// Deduplicate to one representative edge per ordered class pair (the
	// earliest position, direct edges preferred over call-derived ones).
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From.Key != b.From.Key {
			return a.From.Key < b.From.Key
		}
		if a.To.Key != b.To.Key {
			return a.To.Key < b.To.Key
		}
		if (a.Via == "") != (b.Via == "") {
			return a.Via == ""
		}
		return a.Pos < b.Pos
	})
	adj := make(map[string]map[string]Edge) // from key → to key → edge
	locks := make(map[string]LockID)
	for _, e := range edges {
		locks[e.From.Key], locks[e.To.Key] = e.From, e.To
		m := adj[e.From.Key]
		if m == nil {
			m = make(map[string]Edge)
			adj[e.From.Key] = m
		}
		if _, ok := m[e.To.Key]; !ok {
			m[e.To.Key] = e
		}
	}

	for _, comp := range sccs(adj) {
		if len(comp) < 2 {
			continue // self-edges are never added: same-class order is untracked
		}
		cycle := findCycle(adj, comp)
		if cycle == nil {
			continue
		}
		reportCycle(wp, locks, cycle)
	}
	return nil
}

// sccs returns the strongly connected components of the lock graph
// (Tarjan), deterministically ordered.
func sccs(adj map[string]map[string]Edge) [][]string {
	nodes := make([]string, 0, len(adj))
	seenNode := make(map[string]bool)
	addNode := func(n string) {
		if !seenNode[n] {
			seenNode[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for to := range adj[v] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				low[v] = min(low[v], low[w])
			} else if onStack[w] {
				low[v] = min(low[v], index[w])
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// findCycle walks edges within one SCC from its smallest node back to
// itself, returning the edge path.
func findCycle(adj map[string]map[string]Edge, comp []string) []Edge {
	inComp := make(map[string]bool, len(comp))
	for _, n := range comp {
		inComp[n] = true
	}
	start := comp[0]
	var path []Edge
	visited := map[string]bool{start: true}
	var dfs func(v string) bool
	dfs = func(v string) bool {
		var succs []string
		for to := range adj[v] {
			succs = append(succs, to)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if !inComp[w] {
				continue
			}
			if w == start {
				path = append(path, adj[v][w])
				return true
			}
			if visited[w] {
				continue
			}
			visited[w] = true
			path = append(path, adj[v][w])
			if dfs(w) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if !dfs(start) {
		return nil
	}
	return path
}

// reportCycle emits one diagnostic per cycle, anchored at the cycle's
// earliest edge position so a single suppression can waive it.
func reportCycle(wp *framework.WholeProgram, locks map[string]LockID, cycle []Edge) {
	// Rotate so the report anchors at the smallest position.
	anchor := 0
	for i, e := range cycle {
		if posLess(wp, e.Pos, cycle[anchor].Pos) {
			anchor = i
		}
	}
	rotated := append(append([]Edge{}, cycle[anchor:]...), cycle[:anchor]...)

	var steps []string
	for _, e := range rotated {
		p := wp.Fset.Position(e.Pos)
		step := fmt.Sprintf("%s acquired before %s at %s:%d", e.From.Name, e.To.Name, shortFile(p.Filename), p.Line)
		if e.Via != "" {
			step += " (" + e.Via + ")"
		}
		steps = append(steps, step)
	}
	wp.Reportf(rotated[0].Pos, "potential deadlock: lock-order cycle %s: %s; break the cycle by acquiring these locks in one global order or by releasing before the cross-lock call",
		cycleName(rotated), strings.Join(steps, "; "))
	_ = locks
}

func cycleName(cycle []Edge) string {
	names := make([]string, 0, len(cycle)+1)
	for _, e := range cycle {
		names = append(names, e.From.Name)
	}
	names = append(names, cycle[0].From.Name)
	return strings.Join(names, " → ")
}

func posLess(wp *framework.WholeProgram, a, b token.Pos) bool {
	pa, pb := wp.Fset.Position(a), wp.Fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Line < pb.Line
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func copyHeld(held map[string]LockID) map[string]LockID {
	out := make(map[string]LockID, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func sortedHeld(held map[string]LockID) []LockID {
	out := make([]LockID, 0, len(held))
	for _, l := range held {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func dedupeLocks(locks []LockID) []LockID {
	seen := make(map[string]bool)
	out := locks[:0]
	for _, l := range locks {
		if !seen[l.Key] {
			seen[l.Key] = true
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
