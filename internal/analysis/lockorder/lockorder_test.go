package lockorder_test

import (
	"path/filepath"
	"strings"
	"testing"

	"naiad/internal/analysis/analysistest"
	"naiad/internal/analysis/framework"
	"naiad/internal/analysis/lockorder"
)

// TestLockorderCycles runs the cross-package fixture pair: the PR 3
// quiesce-deadlock shape (supervisor↔computation through an interface
// callback), an intra-package inversion, and a consistently-ordered
// negative — plus the serve-shaped fixture (registry lock held across
// session I/O vs. session lock held across server accounting).
func TestLockorderCycles(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "runtime", "supervise", "serve")
}

// TestLockorderSuppression proves a //lint:naiad-vet:lockorder comment on
// the cycle's anchor line waives the diagnostic, and that a waiver that
// suppresses nothing is reported stale.
func TestLockorderSuppression(t *testing.T) {
	root, err := framework.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "transport"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := framework.NewLoader(root).Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := framework.Run(pkgs, []*framework.Analyzer{lockorder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "lock-order cycle") {
		t.Fatalf("want exactly one cycle finding pre-suppression, got %v", findings)
	}
	kept, suppressed, used, err := framework.ApplySuppressions(findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 0 || suppressed != 1 {
		t.Fatalf("want the cycle suppressed (kept=0, suppressed=1), got kept=%v suppressed=%d", kept, suppressed)
	}
	stale := framework.StaleSuppressions(pkgs, used)
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "stale suppression") {
		t.Fatalf("want exactly one stale-suppression finding, got %v", stale)
	}
	if !strings.HasSuffix(stale[0].Position.Filename, "pipe.go") {
		t.Fatalf("stale finding at unexpected position %v", stale[0].Position)
	}
}
