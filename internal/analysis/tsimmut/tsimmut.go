// Package tsimmut flags mutation of timestamp.Timestamp fields outside
// the timestamp package itself.
//
// Timestamps are fixed-capacity value types: they key Go maps, are compared
// with ==, and rely on the invariant that counters beyond Depth are zero
// (timestamp.go). Writing a field directly — t.Epoch = …, t.Counters[i] = …,
// or through a taken address — can silently break == equality and map
// identity for every structure holding the value, the exact class of bug
// the timestamp-token discipline of Lattuada & McSherry's work rules out by
// construction. All legitimate derivation goes through the value-returning
// methods (PushLoop, PopLoop, Tick, WithInner) or the constructors (Root,
// Make); only naiad/internal/timestamp may touch fields.
package tsimmut

import (
	"go/ast"
	"go/types"

	"naiad/internal/analysis/framework"
)

const timestampPath = "naiad/internal/timestamp"

// Analyzer is the tsimmut pass.
var Analyzer = &framework.Analyzer{
	Name: "tsimmut",
	Doc:  "flag mutation (or address-taking) of timestamp.Timestamp fields outside internal/timestamp",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	if pass.Pkg.Path() == timestampPath {
		return nil, nil // the implementation owns its representation
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if name, ok := timestampField(pass, lhs); ok {
						pass.Reportf(lhs.Pos(), "assignment to field %s of timestamp.Timestamp outside internal/timestamp; timestamps are immutable values — build a new one with Root/Make/Tick/WithInner", name)
					}
				}
			case *ast.IncDecStmt:
				if name, ok := timestampField(pass, n.X); ok {
					pass.Reportf(n.X.Pos(), "%s of field %s of timestamp.Timestamp outside internal/timestamp; timestamps are immutable values", n.Tok, name)
				}
			case *ast.UnaryExpr:
				if n.Op.String() != "&" {
					return true
				}
				if name, ok := timestampField(pass, n.X); ok {
					pass.Reportf(n.Pos(), "taking the address of field %s of timestamp.Timestamp; a pointer alias lets the value mutate under a map key or == comparison", name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// timestampField reports whether expr is (an index into) a field selected
// from a timestamp.Timestamp value or pointer, returning the field name.
func timestampField(pass *framework.Pass, expr ast.Expr) (string, bool) {
	expr = ast.Unparen(expr)
	// t.Counters[i] → look at t.Counters; (&t.Counters)[i] similar.
	if idx, ok := expr.(*ast.IndexExpr); ok {
		expr = ast.Unparen(idx.X)
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return "", false
	}
	if !framework.IsNamed(pass.TypesInfo.Types[sel.X].Type, timestampPath, "Timestamp") {
		return "", false
	}
	return sel.Sel.Name, true
}
