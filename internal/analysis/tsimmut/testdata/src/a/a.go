// Package a exercises the tsimmut analyzer: timestamps are immutable
// values outside internal/timestamp.
package a

import ts "naiad/internal/timestamp"

func mutate() {
	var t ts.Timestamp
	t.Epoch = 3       // want `assignment to field Epoch of timestamp.Timestamp`
	t.Counters[0] = 1 // want `assignment to field Counters of timestamp.Timestamp`
	t.Epoch++         // want `of field Epoch of timestamp.Timestamp`
	p := &t.Depth     // want `taking the address of field Depth`
	_ = p
	_ = t
}

func viaPointer(pt *ts.Timestamp) {
	pt.Epoch = 1 // want `assignment to field Epoch`
}

// Legal: reading fields and deriving new values through the constructors
// and the value-returning methods.
func derive(t ts.Timestamp) ts.Timestamp {
	if t.Epoch > 0 {
		return ts.Make(t.Epoch+1, t.Counters[:t.Depth]...)
	}
	return t.PushLoop().Tick()
}

// Legal: whole-value assignment replaces the value, it does not alias it.
func replace(t ts.Timestamp) ts.Timestamp {
	u := t
	u = ts.Root(t.Epoch + 1)
	return u
}
