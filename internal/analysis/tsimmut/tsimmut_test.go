package tsimmut_test

import (
	"testing"

	"naiad/internal/analysis/analysistest"
	"naiad/internal/analysis/tsimmut"
)

func TestTsimmut(t *testing.T) {
	analysistest.Run(t, tsimmut.Analyzer, "a")
}
