// Package golife checks goroutine lifecycles in internal/runtime,
// internal/transport, internal/supervise, and internal/serve.
//
// Two checks:
//
//  1. Leaked goroutines: a `go` statement whose goroutine runs an infinite
//     loop (`for` with no condition) with no reachable shutdown signal — no
//     channel operation or select, no context.Context check, no
//     sync.Cond.Wait, no sync.WaitGroup.Done, and no exit path (return,
//     break, panic) — can never be stopped or observed; it outlives the
//     computation it serves and holds its captures forever. The property
//     is computed transitively: a goroutine body that calls a function is
//     credited with that callee's signals, across packages via facts
//     (dependency-ordered passes make a callee's summary available to
//     every importer's `go` sites).
//
//  2. WaitGroup registration races: `sync.WaitGroup.Add` inside the
//     spawned goroutine instead of before the `go` statement. The parent's
//     `Wait` can run before the goroutine is scheduled, observe a zero
//     counter, and return while the work is still pending — the classic
//     Add/Wait race, detectable only structurally.
//
// A runtime.Capability's DropAsync counts as a shutdown signal, exactly
// like WaitGroup.Done: a goroutine handed a held capability is registered
// with the progress tracker — the frontier cannot pass its timestamp until
// the drop lands — so its completion is awaited by the whole computation
// (the exactly-once sink's commit goroutines terminate this way).
//
// Known false-negative classes: goroutines spawned through plain function
// values (`go h(cut)`) are not resolvable from static call sites; a body
// with any exit path or signal anywhere is trusted even if that path is
// unreachable in practice; Add calls reached through a helper called by
// the goroutine are not attributed to the `go` statement.
package golife

import (
	"go/ast"
	"go/types"
	"strings"

	"naiad/internal/analysis/framework"
)

const (
	runtimePath   = "naiad/internal/runtime"
	transportPath = "naiad/internal/transport"
	supervisePath = "naiad/internal/supervise"
	servePath     = "naiad/internal/serve"
)

// Analyzer is the golife pass.
var Analyzer = &framework.Analyzer{
	Name:      "golife",
	Doc:       "flag goroutines with no reachable shutdown signal (channel op, context check, Cond.Wait, WaitGroup.Done, or Capability.DropAsync) and sync.WaitGroup.Add calls inside the spawned goroutine in internal/runtime, internal/transport, internal/supervise, and internal/serve",
	Run:       run,
	FactTypes: []framework.Fact{&LifeFact{}},
}

// LifeFact is an object fact on a function: the lifecycle summary its
// callers' `go` statements are judged by.
type LifeFact struct {
	// Signal: the body (transitively) performs a channel operation,
	// select, context check, Cond.Wait, or WaitGroup.Done.
	Signal bool
	// Forever: the body (transitively) reaches an infinite loop with no
	// escape (no signal, return, break, or panic inside it).
	Forever bool
}

func (*LifeFact) AFact() {}

func inScope(path string) bool {
	switch strings.TrimSuffix(path, "_test") {
	case runtimePath, transportPath, supervisePath, servePath:
		return true
	}
	return strings.HasSuffix(path, "testdata/src/runtime") ||
		strings.HasSuffix(path, "testdata/src/transport") ||
		strings.HasSuffix(path, "testdata/src/supervise") ||
		strings.HasSuffix(path, "testdata/src/serve")
}

func run(pass *framework.Pass) (any, error) {
	if !inScope(framework.BasePath(pass.Pkg.Path())) {
		return nil, nil
	}
	c := &checker{
		pass:    pass,
		summary: make(map[*types.Func]*LifeFact),
		callees: make(map[*types.Func][]*types.Func),
		direct:  make(map[*types.Func]*LifeFact),
		bodies:  make(map[*types.Func]*ast.FuncDecl),
	}

	// Pass 1: direct properties and same-package call lists for every
	// declared function.
	for _, file := range pass.Files {
		if framework.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.bodies[fn] = fd
			c.direct[fn] = c.directSummary(fd.Body)
			c.callees[fn] = c.calleeList(fd.Body)
		}
	}

	// Pass 2: same-package fixpoint over the call lists, folding in
	// imported facts for cross-package callees.
	for fn := range c.direct {
		c.resolve(fn, make(map[*types.Func]bool))
	}
	for fn, s := range c.summary {
		pass.ExportObjectFact(fn, s)
	}

	// Pass 3: judge every go statement.
	for _, file := range pass.Files {
		if framework.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			c.checkGo(gs)
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass    *framework.Pass
	summary map[*types.Func]*LifeFact // resolved (transitive) summaries
	direct  map[*types.Func]*LifeFact
	callees map[*types.Func][]*types.Func
	bodies  map[*types.Func]*ast.FuncDecl
}

// resolve computes fn's transitive summary, cycling safely.
func (c *checker) resolve(fn *types.Func, visiting map[*types.Func]bool) *LifeFact {
	if s, ok := c.summary[fn]; ok {
		return s
	}
	if visiting[fn] {
		return c.direct[fn] // recursion: settle for the direct view
	}
	visiting[fn] = true
	d := c.direct[fn]
	if d == nil {
		// Not declared in this package: consult the exported facts of the
		// (already analyzed) defining package.
		var imported LifeFact
		if c.pass.ImportObjectFact(fn, &imported) {
			return &imported
		}
		return nil
	}
	s := &LifeFact{Signal: d.Signal, Forever: d.Forever}
	for _, callee := range c.callees[fn] {
		cs := c.resolve(callee, visiting)
		if cs == nil {
			continue
		}
		s.Signal = s.Signal || cs.Signal
		s.Forever = s.Forever || cs.Forever
	}
	delete(visiting, fn)
	c.summary[fn] = s
	return s
}

// lookup returns the summary for a called function: local, or imported
// from a dependency's facts.
func (c *checker) lookup(fn *types.Func) *LifeFact {
	if fn == nil {
		return nil
	}
	if s, ok := c.summary[fn]; ok {
		return s
	}
	var imported LifeFact
	if c.pass.ImportObjectFact(fn, &imported) {
		return &imported
	}
	return nil
}

// checkGo judges one go statement.
func (c *checker) checkGo(gs *ast.GoStmt) {
	var s *LifeFact
	var what string
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		s = c.literalSummary(fun)
		what = "goroutine"
		c.checkAddInside(gs, fun)
	default:
		fn := framework.CalleeFunc(c.pass.TypesInfo, gs.Call)
		if fn == nil || framework.IsInterfaceMethod(fn) {
			return // function value or dynamic dispatch: not resolvable
		}
		s = c.lookup(fn)
		what = "goroutine (" + framework.FuncDisplayName(fn) + ")"
	}
	if s == nil {
		return
	}
	if s.Forever && !s.Signal {
		c.pass.Reportf(gs.Pos(), "%s loops forever with no reachable shutdown signal (no channel operation, context check, Cond.Wait, or WaitGroup.Done); it can never be stopped or awaited — give it a done channel, context, or WaitGroup registration", what)
	}
}

// literalSummary computes the transitive summary of a goroutine literal's
// body.
func (c *checker) literalSummary(lit *ast.FuncLit) *LifeFact {
	s := c.directSummary(lit.Body)
	for _, callee := range c.calleeList(lit.Body) {
		if cs := c.lookup(callee); cs != nil {
			s.Signal = s.Signal || cs.Signal
			s.Forever = s.Forever || cs.Forever
		}
	}
	return s
}

// checkAddInside flags sync.WaitGroup.Add calls in the spawned literal's
// body (nested literals excluded: they are not "the goroutine" itself).
func (c *checker) checkAddInside(gs *ast.GoStmt, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := c.syncMethod(call); fn == "Add" {
			c.pass.Reportf(call.Pos(), "sync.WaitGroup.Add inside the spawned goroutine; the parent's Wait can observe a zero counter before this runs — call Add before the go statement")
		}
		return true
	})
}

// directSummary scans one body (excluding nested function literals) for
// signals and no-escape infinite loops.
func (c *checker) directSummary(body *ast.BlockStmt) *LifeFact {
	s := &LifeFact{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !c.loopEscapes(n.Body) {
				s.Forever = true
			}
		}
		if c.isSignal(n) {
			s.Signal = true
		}
		return true
	})
	return s
}

// loopEscapes reports whether an infinite loop's body contains any way
// out or any shutdown signal: return, break, goto, panic/exit, a channel
// operation, a context check, Cond.Wait, WaitGroup.Done, or a call to a
// function that (transitively) has a signal.
func (c *checker) loopEscapes(body *ast.BlockStmt) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			escapes = true
		case *ast.BranchStmt:
			if n.Tok.String() == "break" || n.Tok.String() == "goto" {
				escapes = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					escapes = true
				}
			}
			if fn := framework.CalleeFunc(c.pass.TypesInfo, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Exit" {
					escapes = true
				}
				if ls := c.lookupForLoop(fn); ls != nil && ls.Signal {
					escapes = true
				}
			}
		}
		if c.isSignal(n) {
			escapes = true
		}
		return !escapes
	})
	return escapes
}

// lookupForLoop is lookup without triggering resolution cycles: inside
// directSummary the same-package fixpoint may not have run yet, so settle
// for direct summaries or imported facts.
func (c *checker) lookupForLoop(fn *types.Func) *LifeFact {
	if s, ok := c.summary[fn]; ok {
		return s
	}
	if d, ok := c.direct[fn]; ok {
		return d
	}
	var imported LifeFact
	if c.pass.ImportObjectFact(fn, &imported) {
		return &imported
	}
	return nil
}

// isSignal classifies n as a shutdown-signal operation.
func (c *checker) isSignal(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SendStmt, *ast.SelectStmt:
		return true
	case *ast.UnaryExpr:
		return n.Op.String() == "<-"
	case *ast.RangeStmt:
		if tv, ok := c.pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return true
			}
		}
	case *ast.CallExpr:
		sel, ok := n.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "context":
			return true // ctx.Done / Err / Deadline: context-aware
		case "sync":
			return fn.Name() == "Wait" || fn.Name() == "Done"
		}
		// Capability.DropAsync is the progress-tracker analogue of
		// WaitGroup.Done: the frontier waits on the drop, so the goroutine's
		// lifetime is observed by the computation.
		if fn.Name() == "DropAsync" && isCapabilityRecv(sig.Recv().Type()) {
			return true
		}
	}
	return false
}

// isCapabilityRecv reports whether t is the runtime's Capability type (or
// the fixture stand-in declared under testdata/src/runtime).
func isCapabilityRecv(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Name() != "Capability" || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == runtimePath || strings.HasSuffix(path, "testdata/src/runtime")
}

// calleeList resolves the body's static call sites to functions (same
// package or imported), excluding nested literals.
func (c *checker) calleeList(body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.CalleeFunc(c.pass.TypesInfo, call)
		if fn == nil || framework.IsInterfaceMethod(fn) || seen[fn] {
			return true
		}
		// Only module-local callees carry summaries; std-library calls
		// never loop forever on our behalf.
		if fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "naiad") {
			return true
		}
		seen[fn] = true
		out = append(out, fn)
		return true
	})
	return out
}

// syncMethod returns the name of a sync-package method call, or "".
func (c *checker) syncMethod(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !framework.IsNamed(sig.Recv().Type(), "sync", "WaitGroup") {
		return ""
	}
	return fn.Name()
}
