// Package door is the serving-front-door-shaped fixture for the golife
// analyzer (its directory name, testdata/src/serve, puts it in scope):
// per-connection handler goroutines must be able to reach the server's
// shutdown signal, or an idle client pins the handler — and its session
// buffers — for the life of the process.
package door

type conn struct{}

func (c *conn) serveOne() {}

// handleConnLeak is the bug shape: the accept loop hands each connection a
// goroutine that polls it forever with no done channel, context, or exit
// path. Shutdown can never reap these handlers.
func handleConnLeak(conns []*conn) {
	for _, c := range conns {
		c := c
		go func() { // want `goroutine loops forever with no reachable shutdown signal`
			for {
				c.serveOne()
			}
		}()
	}
}

// handleConnDone is the sanctioned shape: every handler selects on the
// server's done channel, so Shutdown's close(done) reaches all of them.
func handleConnDone(conns []*conn, done chan struct{}) {
	for _, c := range conns {
		c := c
		go func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				c.serveOne()
			}
		}()
	}
}

// PumpSession drains a session's record channel; the range over the channel
// is its shutdown signal (the demuxer closes it on session teardown).
// Exported so cross-package fixtures can spawn it through its fact.
func PumpSession(records chan []byte) {
	for r := range records {
		_ = r
	}
}

// reapForever is a named leak: a reaper loop with no ticker-channel receive
// and no escape. Spawning it is flagged through its lifecycle summary.
func reapForever(c *conn) {
	for {
		c.serveOne()
	}
}

func startReaper(c *conn) {
	go reapForever(c) // want `goroutine \(door\.reapForever\) loops forever with no reachable shutdown signal`
}
