// Package watch is the supervisor-shaped fixture for the golife analyzer:
// it spawns a goroutine whose body is declared in another package, so the
// leak verdict depends on the lifecycle fact exported by the runtime
// fixture's (dependency-ordered) pass.
package watch

import (
	life "naiad/internal/analysis/golife/testdata/src/runtime"
)

func spawnRemoteLeak() {
	go life.SpinForever() // want `goroutine \(life\.SpinForever\) loops forever with no reachable shutdown signal`
}

// spawnRemotePump is fine: the callee's channel receive, visible through
// its fact, is the shutdown signal.
func spawnRemotePump(ch chan int) {
	go life.Pump(ch)
}
