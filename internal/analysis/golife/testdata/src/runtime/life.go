// Package life is the runtime-shaped fixture for the golife analyzer (its
// directory name, testdata/src/runtime, puts it in scope): goroutine
// spawns with and without reachable shutdown signals, and WaitGroup
// registration on both sides of the go statement.
package life

import "sync"

func work() {}

// SpinForever loops with no exit path and no signal; spawning it leaks.
// Exported so the supervise fixture can prove the summary crosses
// packages as a fact.
func SpinForever() {
	for {
		work()
	}
}

// Pump drains a channel forever: the channel receive is its shutdown
// signal (close(ch) stops it), so spawning it is fine.
func Pump(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func spawnLeak() {
	go func() { // want `goroutine loops forever with no reachable shutdown signal`
		for {
			work()
		}
	}()
}

func spawnNamedLeak() {
	go SpinForever() // want `goroutine \(life\.SpinForever\) loops forever with no reachable shutdown signal`
}

// spawnDone is the sanctioned shape: the loop polls a done channel.
func spawnDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			work()
		}
	}()
}

// spawnBounded exits on its own: an escape path (return) means the loop is
// not unconditionally infinite.
func spawnBounded() {
	go func() {
		for {
			if ready() {
				return
			}
			work()
		}
	}()
}

func ready() bool { return true }

func addInside(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want `sync\.WaitGroup\.Add inside the spawned goroutine`
		defer wg.Done()
		work()
	}()
}

// addBefore is the sanctioned shape: registered before the goroutine can
// race Wait.
func addBefore(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}
