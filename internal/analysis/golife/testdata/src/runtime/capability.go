// The capability half of the fixture: DropAsync on the runtime's held
// Capability is a shutdown signal — the progress frontier waits on the
// drop the way a WaitGroup waits on Done — so a commit-retry goroutine
// whose only observable exit is DropAsync is not a leak, while the same
// loop without it still is.
package life

type Capability struct{}

func (h *Capability) DropAsync() {}

// notACapability has the same method name on a type the analyzer must not
// trust: only the runtime's Capability is wired to the frontier.
type notACapability struct{}

func (h *notACapability) DropAsync() {}

func try() bool { return false }

// spawnCommitRetry is the exactly-once sink shape: retry the commit
// forever, signalling completion solely through the capability drop.
func spawnCommitRetry(hc *Capability) {
	go func() {
		for {
			if try() {
				hc.DropAsync()
			}
			work()
		}
	}()
}

// spawnFakeDrop looks the same but its DropAsync is not the runtime's:
// nothing observes this goroutine, so it is still a leak.
func spawnFakeDrop(hc *notACapability) {
	go func() { // want `goroutine loops forever with no reachable shutdown signal`
		for {
			if try() {
				hc.DropAsync()
			}
			work()
		}
	}()
}
