package golife_test

import (
	"testing"

	"naiad/internal/analysis/analysistest"
	"naiad/internal/analysis/golife"
)

// TestGolife runs the runtime-shaped fixture (leaked literal, leaked named
// spawn, done-channel and bounded negatives, Add-inside-goroutine) together
// with the supervise-shaped fixture whose spawned body lives in the runtime
// fixture — the leak verdict there rides on the exported lifecycle fact —
// and the serve-shaped fixture (connection handlers that must reach the
// server's shutdown signal).
func TestGolife(t *testing.T) {
	analysistest.Run(t, golife.Analyzer, "runtime", "supervise", "serve")
}
