package seedrand_test

import (
	"testing"

	"naiad/internal/analysis/analysistest"
	"naiad/internal/analysis/seedrand"
)

func TestSeedrand(t *testing.T) {
	analysistest.Run(t, seedrand.Analyzer, "seedfix")
}
