// Package seedrand enforces the one-logged-seed reproducibility rule in
// tests: every math/rand source constructed in a _test.go file must derive
// its seed from testutil.Seed.
//
// testutil.Seed logs the seed it returns and honors the NAIAD_TEST_SEED
// override, so any randomized-test failure report carries exactly the value
// needed to replay the schedule (chaos faults, shuffled inputs, random
// graphs). A literal-seeded rand.NewSource silently opts a test out of the
// override — soak loops exploring other schedules never vary it — and a
// time-seeded one makes failures unreproducible. Both defeat the discipline
// the chaos harness depends on.
package seedrand

import (
	"go/ast"
	"go/types"

	"naiad/internal/analysis/framework"
)

const testutilPath = "naiad/internal/testutil"

// Analyzer is the seedrand pass.
var Analyzer = &framework.Analyzer{
	Name: "seedrand",
	Doc:  "flag math/rand sources in _test.go files whose seed is not derived from testutil.Seed",
	Run:  run,
}

// seedCtors are the seed-accepting source constructors of math/rand and
// math/rand/v2.
var seedCtors = map[string]bool{"NewSource": true, "NewPCG": true, "NewChaCha8": true}

// globalFns are package-level math/rand functions drawing from the global
// generator, which no test may use: the global source cannot be re-seeded
// per test, so its draws depend on test execution order.
var globalFns = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "N": true,
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if len(name) < len("_test.go") || name[len(name)-len("_test.go"):] != "_test.go" {
			continue
		}
		derived := collectDerived(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := randFunc(pass, call)
			if fn == nil {
				return true
			}
			switch {
			case globalFns[fn.Name()]:
				pass.Reportf(call.Pos(), "rand.%s uses math/rand's global generator in a test; draw from a rand.New(rand.NewSource(testutil.Seed(t))) source so the schedule is reproducible from the logged seed", fn.Name())
			case seedCtors[fn.Name()]:
				for _, arg := range call.Args {
					if !seedDerived(pass, arg, derived) {
						pass.Reportf(arg.Pos(), "rand.%s seed is not derived from testutil.Seed; failures will not be reproducible from the logged seed (and NAIAD_TEST_SEED cannot vary the schedule)", fn.Name())
						break
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// randFunc resolves call to a package-level function of math/rand or
// math/rand/v2, or nil.
func randFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil // methods (e.g. (*Rand).Intn) draw from an explicit source
	}
	return fn
}

// collectDerived gathers the objects a seed legitimately flows through:
// variables assigned from a testutil.Seed call and function parameters
// (helpers receive their seed from a caller that obtained it properly).
func collectDerived(pass *framework.Pass, file *ast.File) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if !mentionsSeedCall(pass, rhs) {
					continue
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							derived[obj] = true
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							derived[obj] = true
						}
					}
				}
			}
		case *ast.FuncDecl:
			addParams(pass, n.Type, derived)
		case *ast.FuncLit:
			addParams(pass, n.Type, derived)
		}
		return true
	})
	return derived
}

func addParams(pass *framework.Pass, ft *ast.FuncType, derived map[types.Object]bool) {
	if ft.Params == nil {
		return
	}
	for _, f := range ft.Params.List {
		for _, name := range f.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				derived[obj] = true
			}
		}
	}
}

// mentionsSeedCall reports whether expr contains a call to testutil.Seed.
func mentionsSeedCall(pass *framework.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Name() == "Seed" &&
				fn.Pkg() != nil && fn.Pkg().Path() == testutilPath {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// seedDerived reports whether arg plausibly derives from testutil.Seed: it
// contains a direct testutil.Seed call, or mentions a seed-derived variable
// or parameter. Constants and seed-free expressions (literals,
// time.Now().UnixNano()) do not qualify.
func seedDerived(pass *framework.Pass, arg ast.Expr, derived map[types.Object]bool) bool {
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		return false // constant seed, flat out
	}
	if mentionsSeedCall(pass, arg) {
		return true
	}
	ok := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if id, isIdent := n.(*ast.Ident); isIdent {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && derived[obj] {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}
