package seedfix

import (
	"math/rand"
	"testing"

	"naiad/internal/testutil"
)

func TestLiteralSeed(t *testing.T) {
	r := rand.New(rand.NewSource(42)) // want `seed is not derived from testutil.Seed`
	_ = r.Intn(3)                     // legal: a method draws from its explicit source
}

func TestGlobalGenerator(t *testing.T) {
	_ = rand.Intn(3) // want `uses math/rand's global generator`
}

func TestSeeded(t *testing.T) {
	seed := testutil.Seed(t)
	r := rand.New(rand.NewSource(seed))
	r2 := rand.New(rand.NewSource(seed + 1)) // legal: an offset of the logged seed
	_ = derive(seed)
	_, _ = r, r2
}

func TestInline(t *testing.T) {
	r := rand.New(rand.NewSource(testutil.Seed(t)))
	_ = r
}

// derive's seed parameter is trusted: the caller obtained it properly.
func derive(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
