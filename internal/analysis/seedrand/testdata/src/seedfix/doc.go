// Package seedfix is a fixture for the seedrand analyzer; the shapes under
// test live in its _test.go file, since the analyzer only inspects test
// files.
package seedfix
